// Package core implements the QPipe runtime: the paper's primary
// contribution (§4). Queries arrive as precompiled plans, are cut into one
// packet per plan node by the packet dispatcher, and queue up at per-operator
// micro-engines (µEngines) that serve them with worker pools. On-demand
// simultaneous pipelining (OSP) happens at packet admission: a new packet
// whose encoded argument list matches in-progress work becomes a *satellite*
// of the in-progress *host* packet and receives the host's output
// simultaneously, while its own child subtree is cancelled.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qpipe/internal/core/tbuf"
	"qpipe/internal/plan"
)

// PacketState tracks a packet through its lifecycle.
type PacketState int32

// Packet lifecycle states.
const (
	PacketQueued PacketState = iota
	PacketGated              // created but awaiting late activation (§4.3.1)
	PacketRunning
	PacketDone
	PacketCancelled
	PacketSatellite // absorbed by a host packet; never executed itself
)

func (s PacketState) String() string {
	return [...]string{"queued", "gated", "running", "done", "cancelled", "satellite"}[s]
}

var packetSeq atomic.Int64

// Packet is the unit of work a query enqueues at a µEngine: one plan node
// plus its input buffers (fed by child packets) and its output port.
type Packet struct {
	ID    int64
	Query *Query
	Node  plan.Node
	// Sig is the encoded argument list produced by the packet dispatcher;
	// µEngines compare signatures to detect overlapping work (§4.3).
	Sig string

	// Out is the packet's output port; satellites attach here.
	Out *tbuf.SharedOut
	// OutBuf is the primary consumer buffer behind Out (the parent's input,
	// or the query's result buffer for the root packet).
	OutBuf *tbuf.Buffer
	// Inputs are the buffers filled by child packets, in child order.
	Inputs []*tbuf.Buffer
	// Children are the packets producing Inputs.
	Children []*Packet

	state     atomic.Int32
	host      atomic.Pointer[Packet] // non-nil when satellite
	done      chan struct{}
	doneOnce  sync.Once
	runErr    error
	cancelled atomic.Bool

	satMu      sync.Mutex
	satellites []*Packet // packets absorbed by this host
	satSealed  bool      // host finished/finishing; no more satellites
}

// AbsorbSatellite atomically commits sat as a satellite of this host: the
// port attach and the satellite-list append happen under the same lock that
// finish and the rescue path use to seal the list, so a committing absorb
// can never interleave with the host's teardown — which would otherwise
// strand the satellite (attached after the final sweep, done channel never
// closed) or hand an innocent query the host's terminal error. Fails once
// the host has sealed or its port stopped accepting consumers; the caller
// then falls back to normal queueing.
func (p *Packet) AbsorbSatellite(sat *Packet) bool {
	p.satMu.Lock()
	defer p.satMu.Unlock()
	if p.satSealed {
		return false
	}
	if !p.Out.Attach(sat.OutBuf) {
		return false
	}
	sat.host.Store(p)
	sat.setState(PacketSatellite)
	p.satellites = append(p.satellites, sat)
	p.Query.Stats.HostedSatellites.Add(1)
	sat.Query.Stats.SatelliteAttaches.Add(1)
	return true
}

// HasLiveSatellites reports whether any absorbed satellite still awaits this
// packet's output. Streaming hosts consult it when their own query is
// cancelled mid-stream (a satisfied LIMIT, an abandoned Result): the host's
// cancellation is not the satellites' failure, and a host that already
// produced output cannot be rescued from (the satellites hold that prefix),
// so the host keeps producing for them instead.
func (p *Packet) HasLiveSatellites() bool {
	p.satMu.Lock()
	defer p.satMu.Unlock()
	for _, s := range p.satellites {
		select {
		case <-s.done:
			continue
		default:
		}
		if !s.Cancelled() {
			return true
		}
	}
	return false
}

// removeSatellite detaches sat from the host's satellite list (the rescue
// path re-homes it) so the host's finish no longer owns its completion.
func (p *Packet) removeSatellite(sat *Packet) {
	p.satMu.Lock()
	defer p.satMu.Unlock()
	for i, s := range p.satellites {
		if s == sat {
			p.satellites = append(p.satellites[:i], p.satellites[i+1:]...)
			return
		}
	}
}

// sealSatellites closes the host's satellite list to further absorbs (a
// late AbsorbSatellite fails and its packet falls back to normal queueing)
// and returns the current set. Idempotent.
func (p *Packet) sealSatellites() []*Packet {
	p.satMu.Lock()
	defer p.satMu.Unlock()
	p.satSealed = true
	return append([]*Packet(nil), p.satellites...)
}

// finish marks the host done and releases its satellites with the same
// terminal error.
func (p *Packet) finish(err error) {
	st := PacketDone
	if err != nil {
		st = PacketCancelled
	}
	p.markDone(err, st)
	for _, s := range p.sealSatellites() {
		s.markDone(err, PacketSatellite)
	}
}

func newPacket(q *Query, node plan.Node) *Packet {
	return &Packet{
		ID:    packetSeq.Add(1),
		Query: q,
		Node:  node,
		Sig:   node.Signature(),
		done:  make(chan struct{}),
	}
}

// State returns the packet's current lifecycle state.
func (p *Packet) State() PacketState { return PacketState(p.state.Load()) }

func (p *Packet) setState(s PacketState) { p.state.Store(int32(s)) }

// Host returns the host packet if this packet was absorbed as a satellite.
func (p *Packet) Host() *Packet { return p.host.Load() }

// Cancelled reports whether the packet (or its query) was cancelled.
func (p *Packet) Cancelled() bool {
	return p.cancelled.Load() || p.Query.ctx.Err() != nil
}

// markDone finalizes the packet with an error (nil on success).
func (p *Packet) markDone(err error, st PacketState) {
	p.doneOnce.Do(func() {
		p.runErr = err
		p.setState(st)
		close(p.done)
	})
}

// Done returns a channel closed when the packet finishes (done, cancelled,
// or absorbed as a satellite whose host finished).
func (p *Packet) Done() <-chan struct{} { return p.done }

// Err returns the packet's terminal error after Done.
func (p *Packet) Err() error { return p.runErr }

// CancelSubtree cancels this packet and everything beneath it: input buffers
// are abandoned so producing children unblock and stop, and child packets
// are cancelled recursively. This is OSP coordinator step 2 — "notifies
// Q2's children operators to terminate (recursively, for the entire subtree
// underneath the join node)".
func (p *Packet) CancelSubtree() {
	p.cancelled.Store(true)
	for _, in := range p.Inputs {
		in.Abandon()
	}
	for _, c := range p.Children {
		c.CancelSubtree()
		c.markDone(nil, PacketCancelled)
	}
}

// String renders the packet for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d[%s q%d %s]", p.ID, p.Node.Op(), p.Query.ID, p.State())
}

// ---- Query -------------------------------------------------------------------

var querySeq atomic.Int64

// QueryStats accumulates per-query sharing counters.
type QueryStats struct {
	// Packets is the number of packets dispatched (plan nodes).
	Packets int64
	// SatelliteAttaches counts this query's packets absorbed by hosts.
	SatelliteAttaches atomic.Int64
	// HostedSatellites counts foreign packets attached to this query's hosts.
	HostedSatellites atomic.Int64
	// CancelledSubtreePackets counts child packets cancelled by OSP attaches.
	CancelledSubtreePackets atomic.Int64
}

// QueryOptions carries per-query execution knobs. Options travel with the
// query — packets consult their owning query, not the global config — so two
// concurrent queries can run with different parallelism, batch size or OSP
// participation on one runtime. The zero value inherits every runtime
// default.
type QueryOptions struct {
	// Parallelism overrides Config.ScanParallelism for every operator of
	// this query that has no per-node fan-out hint (0 = inherit; per-node
	// WithParallelism hints still win).
	Parallelism int
	// DisableOSP opts the query out of on-demand simultaneous pipelining in
	// both directions: its packets never attach to in-progress work and
	// never host satellites of other queries.
	DisableOSP bool
	// BatchSize overrides Config.BatchSize for this query's operators
	// (0 = inherit).
	BatchSize int
	// Deadline is an absolute per-query deadline (zero = none). The runtime
	// derives the query context from it, so expiry tears the query down
	// through the same active-cancellation path as a caller cancel, and the
	// terminal error is a typed *DeadlineError.
	Deadline time.Time
	// Timeout is a relative per-query budget (0 = none), measured from
	// Submit. When both Timeout and Deadline are set the earlier instant
	// wins. Kept distinct from Deadline so the *DeadlineError can report
	// the configured budget.
	Timeout time.Duration
}

// Query is one client request in flight.
type Query struct {
	ID   int64
	Opts QueryOptions
	ctx  context.Context
	stop context.CancelFunc
	// deadline/timeout mirror the resolved per-query deadline (zero when
	// none was set); CancelErr uses them to type the expiry error.
	deadline time.Time
	timeout  time.Duration
	// finished closes once the root packet's chain completes (set by the
	// runtime's cleanup goroutine); the context watcher exits on it.
	finished chan struct{}

	Root *Packet
	// Result is the buffer the root packet's output lands in; the client
	// drains it.
	Result *tbuf.Buffer

	Stats QueryStats

	// userCancelled marks caller-initiated teardown (Cancel), as opposed to
	// the administrative context release after the query finishes.
	userCancelled atomic.Bool

	mu      sync.Mutex
	packets []*Packet
	buffers []*tbuf.Buffer
	gated   []*Packet
}

func newQuery(ctx context.Context, opts QueryOptions) *Query {
	q := &Query{ID: querySeq.Add(1), Opts: opts, finished: make(chan struct{})}
	// Resolve the per-query deadline: the earlier of the absolute Deadline
	// and Submit-time + Timeout. The caller's own context deadline (if any)
	// still applies through context derivation.
	q.deadline, q.timeout = opts.Deadline, opts.Timeout
	if opts.Timeout > 0 {
		if d := time.Now().Add(opts.Timeout); q.deadline.IsZero() || d.Before(q.deadline) {
			q.deadline = d
		}
	}
	var cancel context.CancelFunc
	if !q.deadline.IsZero() {
		// WithDeadline's cancel releases the timer; folding it into stop
		// keeps the query's single teardown hook.
		ctx, cancel = context.WithDeadline(ctx, q.deadline)
	}
	qctx, stop := context.WithCancel(ctx)
	q.ctx = qctx
	if cancel != nil {
		q.stop = func() { stop(); cancel() }
	} else {
		q.stop = stop
	}
	return q
}

// Deadline returns the query's resolved absolute deadline (zero when none).
func (q *Query) Deadline() time.Time { return q.deadline }

// Ctx returns the query's context.
func (q *Query) Ctx() context.Context { return q.ctx }

// CancelErr returns the query's cancellation error, or nil when the query
// was not genuinely cancelled. Only Cancel — the caller-initiated teardown
// path (explicit Result.Cancel, the context watcher, runtime Close) — sets
// the flag this consults; the runtime's cleanup releases the query context
// with a bare stop() after the query finishes, and that administrative
// teardown must not read as a failure to packets legitimately outliving
// the root (e.g. a producer a merge join abandoned after exhausting its
// other side).
func (q *Query) CancelErr() error {
	if !q.userCancelled.Load() {
		return nil
	}
	err := q.ctx.Err()
	if err == nil {
		err = context.Canceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// A deadline expiry — the query's own Deadline/Timeout option, or
		// the caller context's — surfaces as the typed error (which still
		// unwraps to context.DeadlineExceeded).
		return &DeadlineError{Timeout: q.timeout, Deadline: q.deadline}
	}
	return err
}

// Cancel aborts the query: all its buffers wake with abandonment so blocked
// operators unwind.
func (q *Query) Cancel() {
	q.userCancelled.Store(true)
	q.stop()
	q.mu.Lock()
	bufs := append([]*tbuf.Buffer(nil), q.buffers...)
	packets := append([]*Packet(nil), q.packets...)
	q.mu.Unlock()
	for _, p := range packets {
		p.cancelled.Store(true)
	}
	for _, b := range bufs {
		b.Abandon()
	}
}

func (q *Query) addPacket(p *Packet) {
	q.mu.Lock()
	q.packets = append(q.packets, p)
	q.Stats.Packets++
	q.mu.Unlock()
}

func (q *Query) addBuffer(b *tbuf.Buffer) {
	q.mu.Lock()
	q.buffers = append(q.buffers, b)
	q.mu.Unlock()
}

// Packets snapshots the query's dispatched packets.
func (q *Query) Packets() []*Packet {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*Packet(nil), q.packets...)
}

// Buffers snapshots the query's buffers (deadlock detector input).
func (q *Query) Buffers() []*tbuf.Buffer {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*tbuf.Buffer(nil), q.buffers...)
}

// Wait blocks until the root packet (or its host chain) finishes and
// returns its terminal error. The result buffer may still hold undrained
// batches; callers normally Drain first.
//
// A cancelled (or timed-out) query tears its buffers down under its
// operators, so the root packet's recorded error may be buffer-teardown
// shrapnel rather than the cause; Wait normalizes exactly that shrapnel to
// the typed cancellation error (CancelErr). Genuine operator errors — a
// packet that failed before the teardown — are never masked, even when the
// caller cancels afterwards.
func (q *Query) Wait() error {
	root := q.Root
	for {
		<-root.Done()
		if root.State() == PacketSatellite {
			if h := root.Host(); h != nil {
				root = h
				continue
			}
		}
		err := root.Err()
		if err != nil && (errors.Is(err, tbuf.ErrAbandoned) || errors.Is(err, tbuf.ErrConsumersGone)) {
			if cerr := q.CancelErr(); cerr != nil {
				return cerr
			}
		}
		return err
	}
}
