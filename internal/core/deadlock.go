// Deadlock detection for simultaneously pipelined schedules (paper §4.3.3,
// elaborated in Shkapenyuk et al., CMU-CS-05-122 [30]).
//
// When one producer pipelines to N consumers, every consumer advances at the
// pace of the slowest. Two queries that share *two* producers in opposite
// consumption order can therefore deadlock: query A needs more tuples from
// shared scan S1 before it will drain S2, while query B needs more from S2
// before it will drain S1; both scans block on full buffers. Bounded buffers
// only delay the cycle.
//
// Following [30], the detector models the pipeline as a Waits-For graph
// derived purely from buffer states (full/empty/non-empty) without assuming
// anything about producer/consumer rates:
//
//	producer P --waits-for--> consumer C   when P blocks putting into a full
//	                                       buffer consumed by C
//	consumer C --waits-for--> producer P   when C blocks getting from an
//	                                       empty, still-open buffer fed by P
//
// A cycle is a real deadlock. Resolution materializes (lifts the bound of)
// the cheapest full buffer on the cycle — "only materializing the tuples in
// the event of a real deadlock", choosing the node that minimizes cost; we
// use the currently-buffered tuple count as the cost proxy for the optimal
// set computation.
package core

import (
	"sync"
	"time"

	"qpipe/internal/core/tbuf"
)

type detector struct {
	rt       *Runtime
	interval time.Duration
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

func newDetector(rt *Runtime, interval time.Duration) *detector {
	return &detector{rt: rt, interval: interval, stopCh: make(chan struct{})}
}

func (d *detector) start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.interval)
		defer t.Stop()
		for {
			select {
			case <-d.stopCh:
				return
			case <-t.C:
				d.ScanOnce()
			}
		}
	}()
}

func (d *detector) stop() {
	close(d.stopCh)
	d.wg.Wait()
}

// edge is one Waits-For edge, remembering the buffer that induced it so
// resolution can materialize it.
type edge struct {
	to  int64
	buf *tbuf.Buffer
	// putEdge marks producer→consumer edges (only these are resolvable by
	// materialization: lifting the bound unblocks the Put).
	putEdge bool
}

// ScanOnce snapshots all live buffers, builds the Waits-For graph and
// resolves every cycle found. It returns the number of buffers
// materialized (exported for tests and for a paranoid caller that wants a
// synchronous check).
func (d *detector) ScanOnce() int {
	graph := make(map[int64][]edge)
	for _, q := range d.rt.liveQueries() {
		for _, b := range q.Buffers() {
			s := b.Snapshot()
			if s.Abandoned || s.Closed {
				continue
			}
			if s.PutBlocked && s.State == tbuf.StateFull {
				graph[s.Producer] = append(graph[s.Producer], edge{to: s.Consumer, buf: b, putEdge: true})
			}
			if s.GetBlocked && s.State == tbuf.StateEmpty {
				graph[s.Consumer] = append(graph[s.Consumer], edge{to: s.Producer, buf: b})
			}
		}
	}
	resolved := 0
	for {
		cycle := findCycle(graph)
		if cycle == nil {
			break
		}
		d.rt.deadlocks.Add(1)
		// Materialize the cheapest full buffer on the cycle.
		var victim *tbuf.Buffer
		var victimCost int64
		for _, e := range cycle {
			if !e.putEdge {
				continue
			}
			cost := e.buf.Snapshot().QueuedTup
			if victim == nil || cost < victimCost {
				victim, victimCost = e.buf, cost
			}
		}
		if victim == nil {
			// Cycle of pure get-edges cannot happen without a put edge
			// somewhere; bail out defensively.
			break
		}
		victim.SetUnbounded()
		d.rt.materialized.Add(1)
		resolved++
		// Remove the resolved edge and look for further cycles.
		graph = removeEdges(graph, victim)
	}
	return resolved
}

func removeEdges(graph map[int64][]edge, buf *tbuf.Buffer) map[int64][]edge {
	out := make(map[int64][]edge, len(graph))
	for from, es := range graph {
		for _, e := range es {
			if e.buf != buf {
				out[from] = append(out[from], e)
			}
		}
	}
	return out
}

// findCycle returns the edges of one cycle in the graph, or nil. The DFS
// keeps the current path (path[i] --stack[i]--> path[i+1]) so a back edge to
// a gray node yields exactly the cycle's edges.
func findCycle(graph map[int64][]edge) []edge {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int64]int)
	var path []int64
	var stack []edge
	var dfs func(n int64) []edge
	dfs = func(n int64) []edge {
		color[n] = gray
		path = append(path, n)
		for _, e := range graph[n] {
			switch color[e.to] {
			case white:
				stack = append(stack, e)
				if c := dfs(e.to); c != nil {
					return c
				}
				stack = stack[:len(stack)-1]
			case gray:
				for j, node := range path {
					if node == e.to {
						cycle := append([]edge(nil), stack[j:]...)
						return append(cycle, e)
					}
				}
			}
		}
		color[n] = black
		path = path[:len(path)-1]
		return nil
	}
	for n := range graph {
		if color[n] == white {
			path, stack = path[:0], stack[:0]
			if c := dfs(n); c != nil {
				return c
			}
		}
	}
	return nil
}
