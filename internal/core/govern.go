// Resource governance: query admission control and the typed errors the
// governance layer surfaces (overload shedding, query deadlines, operator
// panic quarantine).
//
// QPipe's sharing thesis only pays off under heavy concurrent traffic, and
// heavy traffic is exactly where an ungoverned engine collapses: every
// submitted query dispatches packets, takes buffers and queues disk
// requests, so offered load past the device's capacity converts directly
// into latency for everyone. The admission controller caps how many queries
// execute at once (Config.MaxConcurrentQueries), parks a bounded FIFO queue
// of waiters behind them (Config.AdmissionQueue), and sheds load with a
// typed *OverloadedError once the queue is full — queued-but-bounded
// behavior as an engine property, mirroring the admission/eviction
// discipline the result cache already applies to memory.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qpipe/internal/plan"
)

// OverloadedError is returned by Submit when the engine is at its
// concurrent-query limit and the admission queue is full: the query was
// shed without dispatching any work. Callers can back off and retry;
// errors.As-match it to distinguish shedding from execution failures.
type OverloadedError struct {
	// MaxConcurrent is the configured concurrent-query limit.
	MaxConcurrent int
	// QueueDepth is the configured admission-queue bound that was full.
	QueueDepth int
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("qpipe: overloaded: %d queries running and %d queued — query shed",
		e.MaxConcurrent, e.QueueDepth)
}

// DeadlineError is the terminal error of a query whose deadline expired —
// set per query via the Deadline/Timeout options (the facade's WithDeadline
// and WithTimeout, SQL SET statement_timeout) or inherited from the
// caller's context. It unwraps to context.DeadlineExceeded so existing
// errors.Is checks keep working, and it is delivered through the same
// cancellation path as a caller cancel: buffers abandoned, packets flagged,
// satellites of a timed-out host rescued — never a hang, never silent
// truncation.
type DeadlineError struct {
	// Timeout is the configured budget when the deadline came from a
	// relative timeout (zero when set as an absolute deadline or inherited
	// from the caller's context).
	Timeout time.Duration
	// Deadline is the absolute instant the query was allowed to run until.
	Deadline time.Time
}

// Error implements error.
func (e *DeadlineError) Error() string {
	if e.Timeout > 0 {
		return fmt.Sprintf("qpipe: query deadline exceeded (statement timeout %s)", e.Timeout)
	}
	return "qpipe: query deadline exceeded"
}

// Unwrap makes errors.Is(err, context.DeadlineExceeded) hold.
func (e *DeadlineError) Unwrap() error { return context.DeadlineExceeded }

// PanicError is the terminal error of a query whose operator panicked. The
// µEngine quarantines the panic: the packet fails with this error, its
// satellites are detached and rescued exactly like the cancel path, the
// panic is counted in the engine's stats, and the µEngine keeps serving
// subsequent packets.
type PanicError struct {
	// Op is the µEngine whose operator panicked.
	Op plan.OpType
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("qpipe: µEngine %s: operator panicked (quarantined): %v", e.Op, e.Value)
}

// ErrClosed is returned by Submit once the runtime has begun shutting down:
// new queries are rejected while in-flight ones drain.
var ErrClosed = fmt.Errorf("qpipe: engine closed")

// admission is the FIFO admission controller. A zero max disables
// governance entirely (Acquire/Release are no-ops).
type admission struct {
	max      int // concurrent-query slots; <= 0 = ungoverned
	queueCap int // bounded wait queue

	mu      sync.Mutex
	running int
	waiters []chan struct{} // FIFO; closed to hand the head waiter a slot

	shed   atomic.Int64
	queued atomic.Int64 // gauge: currently parked waiters
}

func newAdmission(max, queueCap int) *admission {
	return &admission{max: max, queueCap: queueCap}
}

// Acquire blocks until a query slot is available, the context is done, or
// the bounded wait queue is full (typed *OverloadedError, counted as shed).
// Waiters are served strictly FIFO: a released slot transfers to the head
// of the queue, never to a fresh arrival racing past it.
func (a *admission) Acquire(ctx context.Context) error {
	if a.max <= 0 {
		return nil
	}
	a.mu.Lock()
	if a.running < a.max && len(a.waiters) == 0 {
		a.running++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.queueCap {
		a.mu.Unlock()
		a.shed.Add(1)
		return &OverloadedError{MaxConcurrent: a.max, QueueDepth: a.queueCap}
	}
	ch := make(chan struct{})
	a.waiters = append(a.waiters, ch)
	a.queued.Add(1)
	a.mu.Unlock()
	select {
	case <-ch:
		a.queued.Add(-1)
		return nil
	case <-ctx.Done():
		a.queued.Add(-1)
		a.mu.Lock()
		for i, w := range a.waiters {
			if w == ch {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// The slot was granted while the cancellation raced in; hand it
		// back so it is not leaked.
		a.Release()
		return ctx.Err()
	}
}

// Release frees a slot, transferring it to the head waiter if any.
func (a *admission) Release() {
	if a.max <= 0 {
		return
	}
	a.mu.Lock()
	if len(a.waiters) > 0 {
		ch := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.mu.Unlock()
		close(ch)
		return
	}
	a.running--
	a.mu.Unlock()
}

// Shed returns the number of queries rejected with *OverloadedError.
func (a *admission) Shed() int64 { return a.shed.Load() }

// Queued returns the number of queries currently parked in the wait queue.
func (a *admission) Queued() int64 { return a.queued.Load() }
