// Exported hooks used by operator implementations (the ops package): packet
// completion outside the engine loop and sharing statistics.
package core

import (
	"fmt"
	"strings"

	"qpipe/internal/core/tbuf"
	"qpipe/internal/plan"
)

// Complete finishes a packet that an operator served outside the normal
// engine worker loop — absorbed circular-scan consumers and file-streaming
// sort satellites complete this way. Idempotent.
func (p *Packet) Complete(err error) {
	p.Out.Close(err)
	p.finish(err)
}

// NoteShare records one OSP sharing event at the given operator type
// (exposed for operator-specific admission paths like circular scans; the
// default signature-based path records automatically).
func (rt *Runtime) NoteShare(op plan.OpType) { rt.noteShare(op) }

// BatchSize returns the configured tuples-per-batch target for operators.
func (rt *Runtime) BatchSize() int { return rt.Cfg.BatchSize }

// BatchSizeFor resolves the effective batch size for one query: the query's
// WithBatchSize option when set, the runtime default otherwise.
func (rt *Runtime) BatchSizeFor(q *Query) int {
	if q != nil && q.Opts.BatchSize > 0 {
		return q.Opts.BatchSize
	}
	return rt.Cfg.BatchSize
}

// ParallelismFor resolves an operator's effective fan-out: a per-node hint
// wins, then the query's WithParallelism option, then the runtime's
// ScanParallelism default; anything below 1 is serial.
func (rt *Runtime) ParallelismFor(q *Query, hint int) int {
	p := hint
	if p == 0 && q != nil {
		p = q.Opts.Parallelism
	}
	if p == 0 {
		p = rt.Cfg.ScanParallelism
	}
	if p < 1 {
		p = 1
	}
	return p
}

// OSPAllowed reports whether a query participates in on-demand simultaneous
// pipelining: the runtime must have OSP on and the query must not have opted
// out (WithoutOSP). Operator-specific sharing structures (scan groups, sort
// states) must not be registered for queries where this is false.
func (rt *Runtime) OSPAllowed(q *Query) bool {
	return rt.Cfg.OSP && !(q != nil && q.Opts.DisableOSP)
}

// BatchPool returns the runtime's batch recycling pool. Operators draw
// batch arrays here (or via SharedOut.NewBatch) and consumers return them
// via Buffer.Recycle; see the README's "Memory model" for the lease rules.
func (rt *Runtime) BatchPool() *tbuf.BatchPool { return rt.batchPool }

// Discard cancels a packet that was never (and will never be) executed —
// typically a gated child the OSP coordinator replaced with a rewritten
// evaluation strategy.
func (p *Packet) Discard() {
	p.CancelSubtree()
	p.markDone(nil, PacketCancelled)
}

// DumpState renders every live query's packets and buffer snapshots — the
// operator's view of a stuck pipeline (blocked producers/consumers, buffer
// occupancy, satellite relationships). Used by tests on timeouts and
// available to embedders for debugging.
func (rt *Runtime) DumpState() string {
	var b strings.Builder
	for _, q := range rt.liveQueries() {
		fmt.Fprintf(&b, "query %d:\n", q.ID)
		for _, p := range q.Packets() {
			host := ""
			if h := p.Host(); h != nil {
				host = fmt.Sprintf(" host=pkt%d", h.ID)
			}
			fmt.Fprintf(&b, "  %s%s\n", p, host)
		}
		for _, buf := range q.Buffers() {
			s := buf.Snapshot()
			flags := ""
			if s.PutBlocked {
				flags += " PUT-BLOCKED"
			}
			if s.GetBlocked {
				flags += " GET-BLOCKED"
			}
			if s.Closed {
				flags += " closed"
			}
			if s.Abandoned {
				flags += " abandoned"
			}
			fmt.Fprintf(&b, "  buf %-24s %s prod=%d cons=%d q=%d%s\n",
				s.Label, s.State, s.Producer, s.Consumer, s.Queued, flags)
		}
	}
	return b.String()
}

// NewInternalPacket creates a packet owned by an operator's run-time
// rewiring rather than dispatched to a µEngine — e.g. the suffix consumer
// the merge-join split attaches to an in-progress ordered scan. The packet
// has a fresh output buffer; whoever feeds it must call Complete.
func (rt *Runtime) NewInternalPacket(q *Query, node plan.Node) (*Packet, *tbuf.Buffer) {
	buf := tbuf.New(rt.Cfg.BufferCapacity).UsePool(rt.batchPool)
	q.addBuffer(buf)
	pkt := newPacket(q, node)
	pkt.OutBuf = buf
	pkt.Out = tbuf.NewSharedOut(buf, rt.Cfg.ReplayWindow).UsePool(rt.batchPool)
	pkt.Out.SetProducer(pkt.ID)
	q.addPacket(pkt)
	return pkt, buf
}
