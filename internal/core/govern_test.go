package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"qpipe/internal/core/tbuf"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// waitInt64 polls an int64 gauge until it reaches want (governance gauges
// move a goroutine-schedule after the triggering call returns).
func waitInt64(t *testing.T, get func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for get() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d (timed out)", what, get(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(1, 2)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Two waiters park in order.
	order := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		i := i
		go func() {
			if err := a.Acquire(context.Background()); err == nil {
				order <- i
			}
		}()
		waitInt64(t, a.Queued, int64(i), "Queued")
	}
	// A third arrival finds the queue full and is shed with the typed error.
	var oe *OverloadedError
	err := a.Acquire(context.Background())
	if !errors.As(err, &oe) {
		t.Fatalf("full queue: got %v, want *OverloadedError", err)
	}
	if oe.MaxConcurrent != 1 || oe.QueueDepth != 2 {
		t.Fatalf("OverloadedError fields: %+v", oe)
	}
	if a.Shed() != 1 {
		t.Fatalf("Shed = %d", a.Shed())
	}
	// Releases hand the slot to the waiters strictly in FIFO order.
	a.Release()
	if got := <-order; got != 1 {
		t.Fatalf("first released waiter = %d, want 1", got)
	}
	a.Release()
	if got := <-order; got != 2 {
		t.Fatalf("second released waiter = %d, want 2", got)
	}
	a.Release()
	// Fully drained: a fresh Acquire succeeds immediately.
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- a.Acquire(ctx) }()
	waitInt64(t, a.Queued, 1, "Queued")
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	waitInt64(t, a.Queued, 0, "Queued")
	// The cancelled waiter must not have leaked or consumed a slot: one
	// release frees the only slot and a fresh Acquire gets it.
	a.Release()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestAdmissionDisabled(t *testing.T) {
	a := newAdmission(0, 0)
	for i := 0; i < 100; i++ {
		if err := a.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if a.Shed() != 0 || a.Queued() != 0 {
		t.Fatalf("ungoverned admission counted: shed=%d queued=%d", a.Shed(), a.Queued())
	}
}

func TestPanicQuarantineRescuesSatellites(t *testing.T) {
	// The host packet's operator panics after absorbing a satellite. The
	// panic must be quarantined: the host's query fails with a typed
	// *PanicError, the satellite is detached and rescued (its subtree
	// re-dispatched, yielding the full result), the panic is counted in
	// engine stats, and the µEngine keeps serving subsequent packets.
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var boom atomic.Bool
	op := &fakeOp{
		op: "x",
		run: func(rt *Runtime, pkt *Packet) error {
			if boom.CompareAndSwap(true, false) { // only the first (host) packet panics
				started <- struct{}{}
				<-release
				panic("operator bug")
			}
			return pkt.Out.Put(tbuf.Batch{tuple.Tuple{tuple.I64(1)}})
		},
		share: func(rt *Runtime, host, sat *Packet) bool { return host.AbsorbSatellite(sat) },
	}
	rt := newTestRuntime(t, op)
	node := &fakeNode{op: "x", sig: "same"}
	boom.Store(true)
	q1, err := rt.Submit(context.Background(), node)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	q2, err := rt.Submit(context.Background(), node) // absorbed onto q1's packet
	if err != nil {
		t.Fatal(err)
	}
	if q2.Stats.SatelliteAttaches.Load() != 1 {
		t.Fatal("satellite did not attach to the doomed host")
	}
	close(release) // host panics now

	// The rescued satellite re-runs its subtree cleanly and gets the result.
	n2, err2 := q2.Result.Drain()
	if err2 != nil || n2 != 1 {
		t.Fatalf("rescued satellite: %d rows, err %v", n2, err2)
	}
	if err := q2.Wait(); err != nil {
		t.Fatalf("rescued satellite query failed: %v", err)
	}
	// The host query fails with the typed quarantine error.
	var pe *PanicError
	if err := q1.Wait(); !errors.As(err, &pe) {
		t.Fatalf("host error = %v, want *PanicError", err)
	}
	if pe.Op != "x" {
		t.Fatalf("PanicError.Op = %s", pe.Op)
	}
	st := rt.Stats()
	if st.Panics != 1 || st.EngineStats["x"].Panics != 1 {
		t.Fatalf("panic counters: runtime=%d engine=%d", st.Panics, st.EngineStats["x"].Panics)
	}
	// The µEngine keeps serving.
	q3, err := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "later"})
	if err != nil {
		t.Fatal(err)
	}
	if n3, err3 := q3.Result.Drain(); err3 != nil || n3 != 1 {
		t.Fatalf("post-panic packet: %d rows, err %v", n3, err3)
	}
	if err := q3.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitRejectedWhileDraining(t *testing.T) {
	// A slow packet keeps the runtime busy; Close's drain must reject new
	// submissions with ErrClosed while letting the in-flight one finish.
	release := make(chan struct{})
	op := &fakeOp{op: "x", run: func(rt *Runtime, pkt *Packet) error {
		<-release
		return pkt.Out.Put(tbuf.Batch{tuple.Tuple{tuple.I64(1)}})
	}}
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 8})
	rt := NewRuntime(mgr, Config{OSP: true, DeadlockInterval: -1, DrainTimeout: 10 * time.Second}, []Operator{op})
	q1, err := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "a"})
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { rt.Close(); close(closed) }()
	// Close is now draining (or about to be): new submissions must fail with
	// ErrClosed without deadlocking.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "b"}); errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit never saw ErrClosed during drain")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a query was still in flight")
	default:
	}
	close(release)
	if n, err := q1.Result.Drain(); err != nil || n != 1 {
		t.Fatalf("in-flight query during drain: %d rows, err %v", n, err)
	}
	if err := q1.Wait(); err != nil {
		t.Fatalf("drained query failed: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the last query drained")
	}
}
