// µEngine: the per-operator micro-engine (paper Figure 6a). Each µEngine
// owns an incoming packet queue, a pool of worker goroutines (the paper's
// "local thread pool"), and the OSP admission hook that scans in-progress
// work for overlap whenever a new packet queues up.
package core

import (
	"sync"
	"sync/atomic"

	"qpipe/internal/plan"
)

// Operator is the relational code a µEngine runs per packet. Run consumes
// pkt.Inputs and writes to pkt.Out; the engine closes pkt.Out when Run
// returns (clean EOF on nil error).
type Operator interface {
	// Op names the µEngine this operator serves.
	Op() plan.OpType
	// Run executes one packet to completion.
	Run(rt *Runtime, pkt *Packet) error
}

// Sharer is implemented by operators supporting the default signature-based
// OSP attach: when a new packet's signature matches an in-progress host,
// TryShare attempts the attachment (checking the operator's window of
// opportunity) and returns whether the new packet became a satellite.
type Sharer interface {
	TryShare(rt *Runtime, host, sat *Packet) bool
}

// Admitter is implemented by operators that control admission beyond
// signature matching — the scan µEngines, whose circular scans share page
// streams between packets with *different* predicates (§4.3.1). TryAdmit
// returns true if the packet was absorbed without queueing.
type Admitter interface {
	TryAdmit(rt *Runtime, pkt *Packet) bool
}

// EngineStats counts a µEngine's activity.
type EngineStats struct {
	Enqueued   int64
	Completed  int64
	Satellites int64 // packets absorbed by OSP instead of executing
	SubWorkers int64 // sub-workers spawned by running packets (scan partitions)
	Errors     int64
	Panics     int64 // operator panics quarantined (packet failed, µEngine kept serving)
}

// MicroEngine serves one operator type from a queue. Two worker models are
// supported:
//
//   - Fixed pool (workers > 0): the paper's model — a local thread pool of
//     that many workers serves the queue. A plan that stacks two nodes of
//     the same type (e.g. a 3-way merge-join) needs at least 2 workers at
//     that engine or the parent can starve its own child.
//   - Elastic (workers <= 0, the default): one goroutine per admitted
//     packet. Goroutines are the natural Go analogue of the paper's
//     threads; elasticity removes pool-sizing deadlocks while preserving
//     the admission queue semantics OSP needs.
type MicroEngine struct {
	rt      *Runtime
	op      plan.OpType
	impl    Operator
	elastic bool

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Packet
	inflight map[string][]*Packet // sig -> queued/running host packets
	closed   bool

	wg sync.WaitGroup

	enq    atomic.Int64
	done   atomic.Int64
	sats   atomic.Int64
	subs   atomic.Int64
	errs   atomic.Int64
	panics atomic.Int64
}

func newMicroEngine(rt *Runtime, impl Operator, workers int) *MicroEngine {
	e := &MicroEngine{rt: rt, op: impl.Op(), impl: impl, inflight: make(map[string][]*Packet)}
	e.cond = sync.NewCond(&e.mu)
	if workers <= 0 {
		e.elastic = true
		return e
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Stats snapshots the engine counters.
func (e *MicroEngine) Stats() EngineStats {
	return EngineStats{
		Enqueued:   e.enq.Load(),
		Completed:  e.done.Load(),
		Satellites: e.sats.Load(),
		SubWorkers: e.subs.Load(),
		Errors:     e.errs.Load(),
		Panics:     e.panics.Load(),
	}
}

// SpawnSub runs fn as a sub-worker of this µEngine on behalf of a running
// packet — the partitioned scan's fan-out (one sub-worker per extra
// partition). Sub-workers are tracked by the engine's WaitGroup so close
// waits for them, but they always run elastically (a fresh goroutine) even
// when the engine uses a fixed pool: a partition queued behind the very
// packet that spawned it would deadlock the scan group against pool sizing.
// Callers must guarantee fn returns; the scan group's teardown does.
func (e *MicroEngine) SpawnSub(fn func()) {
	e.subs.Add(1)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn()
	}()
}

// Enqueue admits a packet: OSP overlap check first (paper §4.3: "every time
// a new packet queues up in a µEngine, we scan the queue with the existing
// packets to check for overlapping work"), then normal queueing.
func (e *MicroEngine) Enqueue(pkt *Packet) {
	e.enq.Add(1)
	if e.rt.OSPAllowed(pkt.Query) {
		// Signature-exact sharing against queued and running packets.
		if sharer, ok := e.impl.(Sharer); ok {
			e.mu.Lock()
			hosts := append([]*Packet(nil), e.inflight[pkt.Sig]...)
			e.mu.Unlock()
			for _, host := range hosts {
				// A host whose query opted out of OSP (WithoutOSP) must not
				// serve satellites either — opting out is bidirectional.
				if host.Query == pkt.Query || host.Cancelled() || host.Query.Opts.DisableOSP {
					continue
				}
				if sharer.TryShare(e.rt, host, pkt) {
					e.absorb(host, pkt)
					return
				}
			}
		}
		// Operator-specific admission (circular scans etc.).
		if adm, ok := e.impl.(Admitter); ok {
			if adm.TryAdmit(e.rt, pkt) {
				e.sats.Add(1)
				return
			}
		}
	}
	pkt.setState(PacketQueued)
	e.mu.Lock()
	e.inflight[pkt.Sig] = append(e.inflight[pkt.Sig], pkt)
	if e.elastic {
		e.wg.Add(1)
		e.mu.Unlock()
		go func() {
			defer e.wg.Done()
			e.runPacket(pkt)
		}()
		return
	}
	e.queue = append(e.queue, pkt)
	e.mu.Unlock()
	e.cond.Signal()
}

// absorb completes the satellite bookkeeping after a successful TryShare:
// the satellite's children are cancelled and the packet is parked on the
// host (OSP coordinator steps 1-2, Figure 6b). The list/port commit itself
// already happened atomically inside TryShare (Packet.AbsorbSatellite or an
// operator-specific mechanism like the sort file streamer).
func (e *MicroEngine) absorb(host, sat *Packet) {
	// Terminate everything *beneath* the satellite — but not the satellite
	// packet itself: its output port stays live (the host, or a
	// materialization streamer, feeds it).
	for _, in := range sat.Inputs {
		in.Abandon()
	}
	for _, c := range sat.Children {
		c.CancelSubtree()
		c.markDone(nil, PacketCancelled)
		sat.Query.Stats.CancelledSubtreePackets.Add(1)
	}
	e.sats.Add(1)
	e.rt.noteShare(e.op)
}

func (e *MicroEngine) removeInflight(pkt *Packet) {
	e.mu.Lock()
	defer e.mu.Unlock()
	list := e.inflight[pkt.Sig]
	for i, p := range list {
		if p == pkt {
			e.inflight[pkt.Sig] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(e.inflight[pkt.Sig]) == 0 {
		delete(e.inflight, pkt.Sig)
	}
}

func (e *MicroEngine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.closed && len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		pkt := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()

		e.runPacket(pkt)
	}
}

func (e *MicroEngine) runPacket(pkt *Packet) {
	defer e.removeInflight(pkt)
	if pkt.Cancelled() {
		e.rescueSatellites(pkt)
		// Unblock producing children exactly as the normal exit path does.
		for _, in := range pkt.Inputs {
			in.Abandon()
		}
		cerr := pkt.Query.CancelErr()
		pkt.Out.Close(cerr)
		pkt.finish(cerr)
		return
	}
	pkt.setState(PacketRunning)
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				// Panic quarantine: the packet fails with a typed error, its
				// satellites are detached and rescued below exactly like the
				// cancel path, and this worker returns normally so the µEngine
				// keeps serving subsequent packets.
				err = &PanicError{Op: e.op, Value: r}
				e.panics.Add(1)
			}
		}()
		return e.impl.Run(e.rt, pkt)
	}()
	if err != nil {
		// A cancelled query tears its buffers down underneath the operator,
		// so Run surfaces whatever side it tripped over first (an abandoned
		// input, a dead output port). Normalize to the cancellation error:
		// the caller cancelled, and that — not the teardown shrapnel — is
		// the packet's terminal cause. (CancelErr, not ctx.Err(): a packet
		// legitimately outliving an already-finished query must keep its own
		// error untouched.)
		if cerr := pkt.Query.CancelErr(); cerr != nil {
			err = cerr
		}
		e.errs.Add(1)
	}
	e.done.Add(1)
	// Abandon any input not drained to EOF: operators may legitimately
	// finish early (a merge join stops when one side is exhausted), and
	// their producers must not stay blocked on full buffers forever.
	for _, in := range pkt.Inputs {
		in.Abandon()
	}
	if err != nil || pkt.Cancelled() {
		e.rescueSatellites(pkt)
	}
	pkt.Out.Close(err)
	pkt.finish(err)
}

// rescueSatellites re-homes live satellites of a host that is dying before
// producing any output — typically a host whose own query was cancelled
// after the absorb, which is the host's failure, not the satellites'. Each
// rescued satellite's plan subtree is re-dispatched inside its own query and
// pumped into the satellite's existing output port. A host that already
// produced output cannot be rescued from: its satellites hold that prefix,
// and re-running would duplicate tuples — they stay absorbed and inherit the
// host's terminal state. Must run before the host closes its port. Sealing
// the satellite list first closes the absorb race: an AbsorbSatellite
// against this dying host after the seal fails, and its packet queues
// normally instead of missing both rescue and finish.
func (e *MicroEngine) rescueSatellites(pkt *Packet) {
	sats := pkt.sealSatellites()
	if pkt.Out.Produced() > 0 {
		return
	}
	for _, sat := range sats {
		select {
		case <-sat.Done():
			// Already finalized — e.g. the host completed through an
			// operator path (a scan group's Complete) before runPacket
			// observed the cancellation, and finish released the satellites
			// with a genuine result. Re-dispatching would launch a ghost
			// subtree whose output nobody reads.
			continue
		default:
		}
		if sat.Cancelled() {
			continue
		}
		pkt.removeSatellite(sat)
		pkt.Out.Detach(sat.OutBuf)
		sat.host.Store(nil)
		sat.setState(PacketQueued)
		e.rt.rescue(sat)
	}
}

func (e *MicroEngine) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
	e.wg.Wait()
}
