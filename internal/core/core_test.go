package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"qpipe/internal/core/tbuf"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// fakeOp is a configurable operator for runtime tests.
type fakeOp struct {
	op    plan.OpType
	run   func(rt *Runtime, pkt *Packet) error
	share func(rt *Runtime, host, sat *Packet) bool
}

func (f *fakeOp) Op() plan.OpType { return f.op }

func (f *fakeOp) Run(rt *Runtime, pkt *Packet) error { return f.run(rt, pkt) }

func (f *fakeOp) TryShare(rt *Runtime, host, sat *Packet) bool {
	if f.share == nil {
		return false
	}
	return f.share(rt, host, sat)
}

// fakeNode is a minimal leaf plan node with a controllable signature.
type fakeNode struct {
	op  plan.OpType
	sig string
}

func (n *fakeNode) Op() plan.OpType       { return n.op }
func (n *fakeNode) Children() []plan.Node { return nil }
func (n *fakeNode) Schema() *tuple.Schema { return tuple.NewSchema(tuple.Col("v", tuple.KindInt)) }
func (n *fakeNode) Signature() string     { return n.sig }

func newTestRuntime(t *testing.T, ops ...Operator) *Runtime {
	t.Helper()
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 8})
	rt := NewRuntime(mgr, Config{OSP: true, DeadlockInterval: 5 * time.Millisecond}, ops)
	t.Cleanup(rt.Close)
	return rt
}

func TestSubmitUnknownOperator(t *testing.T) {
	rt := newTestRuntime(t, &fakeOp{op: "x", run: func(*Runtime, *Packet) error { return nil }})
	_, err := rt.Submit(context.Background(), &fakeNode{op: "zzz", sig: "s"})
	if err == nil {
		t.Fatal("submit with unknown operator should fail")
	}
}

func TestRunPacketProducesAndCloses(t *testing.T) {
	op := &fakeOp{op: "x", run: func(rt *Runtime, pkt *Packet) error {
		return pkt.Out.Put(tbuf.Batch{tuple.Tuple{tuple.I64(7)}})
	}}
	rt := newTestRuntime(t, op)
	q, err := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "a"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Result.Drain()
	if err != nil || n != 1 {
		t.Fatalf("drain: %d %v", n, err)
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	if q.Root.State() != PacketDone {
		t.Fatalf("state: %v", q.Root.State())
	}
}

func TestRunPacketErrorPropagates(t *testing.T) {
	want := errors.New("op failed")
	op := &fakeOp{op: "x", run: func(*Runtime, *Packet) error { return want }}
	rt := newTestRuntime(t, op)
	q, _ := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "a"})
	if _, err := q.Result.Drain(); !errors.Is(err, want) {
		t.Fatalf("drain err: %v", err)
	}
	if err := q.Wait(); !errors.Is(err, want) {
		t.Fatalf("wait err: %v", err)
	}
}

func TestRunPacketPanicRecovered(t *testing.T) {
	op := &fakeOp{op: "x", run: func(*Runtime, *Packet) error { panic("boom") }}
	rt := newTestRuntime(t, op)
	q, _ := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "a"})
	if _, err := q.Result.Drain(); err == nil {
		t.Fatal("panic should surface as error")
	}
	if err := q.Wait(); err == nil {
		t.Fatal("wait should report panic error")
	}
}

func TestSignatureShareAbsorbsSatellite(t *testing.T) {
	started := make(chan *Packet, 1)
	release := make(chan struct{})
	op := &fakeOp{
		op: "x",
		run: func(rt *Runtime, pkt *Packet) error {
			started <- pkt
			<-release
			return pkt.Out.Put(tbuf.Batch{tuple.Tuple{tuple.I64(1)}})
		},
		share: func(rt *Runtime, host, sat *Packet) bool {
			return host.AbsorbSatellite(sat)
		},
	}
	rt := newTestRuntime(t, op)
	node := &fakeNode{op: "x", sig: "same"}
	q1, _ := rt.Submit(context.Background(), node)
	<-started
	q2, _ := rt.Submit(context.Background(), node)
	close(release)
	n1, err1 := q1.Result.Drain()
	n2, err2 := q2.Result.Drain()
	if err1 != nil || err2 != nil || n1 != 1 || n2 != 1 {
		t.Fatalf("results: %d %v / %d %v", n1, err1, n2, err2)
	}
	if err := q2.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := q2.Stats.SatelliteAttaches.Load(); got != 1 {
		t.Fatalf("satellite attaches: %d", got)
	}
	if got := q1.Stats.HostedSatellites.Load(); got != 1 {
		t.Fatalf("hosted satellites: %d", got)
	}
	st := rt.Stats()
	if st.SharesByOp["x"] != 1 {
		t.Fatalf("shares: %v", st.SharesByOp)
	}
	if rt.TotalShares() != 1 {
		t.Fatal("TotalShares")
	}
}

func TestNoShareAcrossSameQuery(t *testing.T) {
	// Two identical nodes inside ONE query must not satellite each other.
	release := make(chan struct{})
	var runs atomic.Int32
	op := &fakeOp{
		op: "x",
		run: func(rt *Runtime, pkt *Packet) error {
			runs.Add(1)
			<-release
			return nil
		},
		share: func(rt *Runtime, host, sat *Packet) bool {
			t.Error("TryShare must not be consulted for same-query packets")
			return false
		},
	}
	rt := newTestRuntime(t, op)
	q := newQuery(context.Background(), QueryOptions{})
	buf1 := tbuf.New(2)
	q.addBuffer(buf1)
	node := &fakeNode{op: "x", sig: "same"}
	rt.dispatch(q, node, buf1, false)
	buf2 := tbuf.New(2)
	q.addBuffer(buf2)
	rt.dispatch(q, node, buf2, false)
	time.Sleep(20 * time.Millisecond)
	close(release)
	if got := runs.Load(); got != 2 {
		t.Fatalf("runs: %d", got)
	}
}

func TestOSPDisabledNeverShares(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 8})
	var shares int
	op := &fakeOp{
		op:  "x",
		run: func(rt *Runtime, pkt *Packet) error { return nil },
		share: func(rt *Runtime, host, sat *Packet) bool {
			shares++
			return true
		},
	}
	rt := NewRuntime(mgr, Config{OSP: false}, []Operator{op})
	defer rt.Close()
	node := &fakeNode{op: "x", sig: "same"}
	q1, _ := rt.Submit(context.Background(), node)
	q2, _ := rt.Submit(context.Background(), node)
	q1.Result.Drain()
	q2.Result.Drain()
	q1.Wait()
	q2.Wait()
	if shares != 0 {
		t.Fatalf("OSP off but TryShare called %d times", shares)
	}
}

func TestQueryCancelAbandonsBuffers(t *testing.T) {
	blocked := make(chan struct{})
	op := &fakeOp{op: "x", run: func(rt *Runtime, pkt *Packet) error {
		close(blocked)
		for {
			// Produce until the consumer disappears.
			if err := pkt.Out.Put(tbuf.Batch{tuple.Tuple{tuple.I64(1)}}); err != nil {
				return nil
			}
		}
	}}
	rt := newTestRuntime(t, op)
	q, _ := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "a"})
	<-blocked
	q.Cancel()
	done := make(chan struct{})
	go func() {
		q.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled query never finished")
	}
}

func TestStatsCounters(t *testing.T) {
	op := &fakeOp{op: "x", run: func(*Runtime, *Packet) error { return nil }}
	rt := newTestRuntime(t, op)
	for i := 0; i < 3; i++ {
		q, _ := rt.Submit(context.Background(), &fakeNode{op: "x", sig: fmt.Sprintf("s%d", i)})
		q.Result.Drain()
		q.Wait()
	}
	st := rt.Stats()
	if st.Queries != 3 {
		t.Fatalf("queries: %d", st.Queries)
	}
	if es := st.EngineStats["x"]; es.Enqueued != 3 || es.Completed != 3 {
		t.Fatalf("engine stats: %+v", es)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 8})
	rt := NewRuntime(mgr, Config{}, []Operator{
		&fakeOp{op: "x", run: func(*Runtime, *Packet) error { return nil }},
	})
	rt.Close()
	if _, err := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "a"}); err == nil {
		t.Fatal("submit after close should fail")
	}
	rt.Close() // idempotent
}

func TestDuplicateOperatorPanics(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate operator registration should panic")
		}
	}()
	mk := func() Operator { return &fakeOp{op: "x", run: func(*Runtime, *Packet) error { return nil }} }
	NewRuntime(mgr, Config{}, []Operator{mk(), mk()})
}

func TestPacketStateStrings(t *testing.T) {
	for s := PacketQueued; s <= PacketSatellite; s++ {
		if s.String() == "" {
			t.Fatalf("state %d has no name", s)
		}
	}
}

func TestFixedWorkerPool(t *testing.T) {
	// With a fixed pool of 1 worker, packets serialize.
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 8})
	var active, maxActive int
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	op := &fakeOp{op: "x", run: func(*Runtime, *Packet) error {
		<-mu
		active++
		if active > maxActive {
			maxActive = active
		}
		mu <- struct{}{}
		time.Sleep(5 * time.Millisecond)
		<-mu
		active--
		mu <- struct{}{}
		return nil
	}}
	rt := NewRuntime(mgr, Config{WorkersPerEngine: 1}, []Operator{op})
	defer rt.Close()
	var qs []*Query
	for i := 0; i < 4; i++ {
		q, _ := rt.Submit(context.Background(), &fakeNode{op: "x", sig: fmt.Sprintf("s%d", i)})
		qs = append(qs, q)
	}
	for _, q := range qs {
		q.Result.Drain()
		q.Wait()
	}
	if maxActive != 1 {
		t.Fatalf("max concurrent packets with 1 worker: %d", maxActive)
	}
}

// ---- Deadlock detector ---------------------------------------------------------

// TestDeadlockDetectorBreaksCycle constructs the paper's §3.3 scenario
// artificially: two "queries" each consume two shared producers in opposite
// orders, with tiny buffers, guaranteeing a pipeline deadlock. The detector
// must materialize a buffer and let everything finish.
func TestDeadlockDetectorBreaksCycle(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 512}, PoolPages: 8})
	rt := NewRuntime(mgr, Config{OSP: true, BufferCapacity: 1, DeadlockInterval: 5 * time.Millisecond}, nil)
	defer rt.Close()

	q := newQuery(context.Background(), QueryOptions{})
	// Producer A feeds bufA1 (consumer 100) and bufA2 (consumer 200);
	// producer B feeds bufB1 (consumer 100) and bufB2 (consumer 200).
	// Consumer 100 drains A then B; consumer 200 drains B then A. With
	// 1-batch buffers both producers block and both consumers starve.
	mkBuf := func(prod, cons int64, label string) *tbuf.Buffer {
		b := tbuf.New(1)
		b.Producer.Store(prod)
		b.Consumer.Store(cons)
		b.Label = label
		q.addBuffer(b)
		return b
	}
	bufA1 := mkBuf(1, 100, "A->c1")
	bufA2 := mkBuf(1, 200, "A->c2")
	bufB1 := mkBuf(2, 100, "B->c1")
	bufB2 := mkBuf(2, 200, "B->c2")
	rt.mu.Lock()
	rt.queries[q.ID] = q
	rt.mu.Unlock()

	const rows = 50
	produce := func(b1, b2 *tbuf.Buffer) {
		for i := 0; i < rows; i++ {
			batch := tbuf.Batch{tuple.Tuple{tuple.I64(int64(i))}}
			if err := b1.Put(batch); err != nil {
				break
			}
			if err := b2.Put(append(tbuf.Batch{}, batch...)); err != nil {
				break
			}
		}
		b1.Close(nil)
		b2.Close(nil)
	}
	consume := func(first, second *tbuf.Buffer) error {
		if _, err := first.Drain(); err != nil {
			return err
		}
		_, err := second.Drain()
		return err
	}
	errs := make(chan error, 4)
	go func() { produce(bufA1, bufA2); errs <- nil }()
	go func() { produce(bufB1, bufB2); errs <- nil }()
	go func() { errs <- consume(bufA1, bufB1) }()
	go func() { errs <- consume(bufB2, bufA2) }()

	timeout := time.After(5 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("pipeline deadlock was not resolved")
		}
	}
	if rt.Stats().Materialized == 0 {
		t.Fatal("detector should have materialized at least one buffer")
	}
	if rt.Stats().DeadlocksSeen == 0 {
		t.Fatal("detector should have counted a deadlock")
	}
}

func TestDetectorNoFalsePositives(t *testing.T) {
	// A plain linear pipeline under load must not trigger materialization.
	op := &fakeOp{op: "x", run: func(rt *Runtime, pkt *Packet) error {
		for i := 0; i < 200; i++ {
			if err := pkt.Out.Put(tbuf.Batch{tuple.Tuple{tuple.I64(int64(i))}}); err != nil {
				return nil
			}
			time.Sleep(time.Millisecond / 4)
		}
		return nil
	}}
	rt := newTestRuntime(t, op)
	q, _ := rt.Submit(context.Background(), &fakeNode{op: "x", sig: "a"})
	// Slow consumer.
	for {
		_, err := q.Result.Get()
		if err != nil {
			break
		}
		time.Sleep(time.Millisecond / 2)
	}
	if rt.Stats().Materialized != 0 {
		t.Fatalf("false-positive materialization: %d", rt.Stats().Materialized)
	}
}

func TestFindCycleDirect(t *testing.T) {
	b := tbuf.New(1)
	g := map[int64][]edge{
		1: {{to: 2, buf: b, putEdge: true}},
		2: {{to: 3, buf: b}},
		3: {{to: 1, buf: b}},
	}
	if findCycle(g) == nil {
		t.Fatal("3-cycle not found")
	}
	g2 := map[int64][]edge{
		1: {{to: 2, buf: b}},
		2: {{to: 3, buf: b}},
	}
	if findCycle(g2) != nil {
		t.Fatal("acyclic graph reported a cycle")
	}
	// Self-loop.
	g3 := map[int64][]edge{1: {{to: 1, buf: b, putEdge: true}}}
	if findCycle(g3) == nil {
		t.Fatal("self-loop not found")
	}
}
