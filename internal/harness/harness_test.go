package harness

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/workload/tpch"
)

// tinyScale is even smaller than SmallScale for fast unit runs.
func tinyScale() Scale {
	return Scale{SF: 0.001, BigRows: 1500, PoolPages: 32,
		SeqLat: 40 * time.Microsecond, RandLat: 60 * time.Microsecond, Spindles: 1, Seed: 7}
}

func TestTPCHEnvAndSystems(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	qp, err := env.NewQPipe()
	if err != nil {
		t.Fatal(err)
	}
	vol, err := env.NewVolcano()
	if err != nil {
		t.Fatal(err)
	}
	base, err := env.NewBaseline()
	if err != nil {
		t.Fatal(err)
	}
	p := tpch.Q6(tpch.DefaultParams())
	for _, sys := range []System{qp, vol, base} {
		if err := sys.Exec(context.Background(), p); err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
	}
}

// TestAllMixQueriesAgree cross-validates the two engines: every query in
// the paper's mix must produce identical aggregate results on QPipe and
// Volcano (they share nothing but the plan and the data).
func TestAllMixQueriesAgree(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	qp, _ := env.NewQPipe()
	vol, _ := env.NewVolcano()
	qps := qp.(*QPipeSystem)
	vols := vol.(*VolcanoSystem)
	params := tpch.DefaultParams()
	for _, qn := range tpch.MixQueries {
		p := tpch.Query(qn, params)
		res, err := qps.Eng.Query(context.Background(), p)
		if err != nil {
			t.Fatalf("Q%d submit: %v", qn, err)
		}
		qpRows, err := res.All()
		if err != nil {
			t.Fatalf("Q%d qpipe: %v", qn, err)
		}
		vRows, err := vols.Eng.Run(context.Background(), tpch.Query(qn, params))
		if err != nil {
			t.Fatalf("Q%d volcano: %v", qn, err)
		}
		if len(qpRows) != len(vRows) {
			t.Fatalf("Q%d: qpipe %d rows, volcano %d rows", qn, len(qpRows), len(vRows))
		}
		// Compare as multisets of rendered rows (group-by order differs).
		counts := make(map[string]int)
		for _, r := range qpRows {
			counts[r.String()]++
		}
		for _, r := range vRows {
			counts[r.String()]--
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("Q%d: row multiset mismatch on %s (delta %d)", qn, k, c)
			}
		}
	}
}

func TestQ4VariantsAgree(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	qp, _ := env.NewQPipe()
	qps := qp.(*QPipeSystem)
	params := tpch.DefaultParams()
	get := func(p plan.Node) map[string]int {
		res, err := qps.Eng.Query(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.All()
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[string]int)
		for _, r := range rows {
			m[r.String()]++
		}
		return m
	}
	mj := get(tpch.Q4MergeJoin(params))
	hj := get(tpch.Q4HashJoin(params))
	if len(mj) == 0 {
		t.Fatal("Q4 produced no groups; scale too small")
	}
	if len(mj) != len(hj) {
		t.Fatalf("Q4 variants disagree: %v vs %v", mj, hj)
	}
	for k, v := range mj {
		if hj[k] != v {
			t.Fatalf("Q4 group %s: mj=%d hj=%d", k, v, hj[k])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	figs, err := Fig8CircularScan(env, []int{4}, []float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	fig := figs[0]
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	base, osp := fig.Series[0], fig.Series[1]
	for i := range base.Points {
		if osp.Points[i].Y >= base.Points[i].Y {
			t.Errorf("at frac %.1f: OSP blocks %v >= baseline %v",
				base.Points[i].X, osp.Points[i].Y, base.Points[i].Y)
		}
	}
	t.Log("\n" + fig.Format())
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, err := Fig12Throughput(env, []int{1, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	// At 6 clients (disk-bound), QPipe w/OSP should beat DBMS X.
	x, osp := fig.Series[0], fig.Series[2]
	if osp.Points[1].Y <= x.Points[1].Y {
		t.Errorf("6 clients: QPipe %.1f qph <= X %.1f qph", osp.Points[1].Y, x.Points[1].Y)
	}
	t.Log("\n" + fig.Format())
}

func TestFig1aBreakdown(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, err := Fig1aTimeBreakdown(env)
	if err != nil {
		t.Fatal(err)
	}
	// Every query's fractions must sum to ~1.
	for i := range fig.Series[0].Points {
		sum := 0.0
		for _, s := range fig.Series {
			sum += s.Points[i].Y
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("query %v: fractions sum to %f", fig.Series[0].Points[i].X, sum)
		}
	}
	t.Log("\n" + fig.Format())
}

func TestStandaloneResponse(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	sys, _ := env.NewBaseline()
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	d, err := StandaloneResponse(env, sys, func() plan.Node { return tpch.Q6(tpch.DefaultParams()) })
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("non-positive response time")
	}
}

func TestRunClosedLoop(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	sys, _ := env.NewQPipe()
	res := RunClosedLoop(env, sys, 3, 2, 0, func(rng *rand.Rand) plan.Node {
		return tpch.Q6(tpch.RandomParams(rng))
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed %d queries, want 6", res.Completed)
	}
	if res.Throughput <= 0 || res.AvgResponse <= 0 {
		t.Fatalf("bad metrics: %+v", res)
	}
}

func TestFigureFormat(t *testing.T) {
	fig := Figure{
		Name: "T", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 2}, {X: 3, Y: 4}}},
			{Label: "b", Points: []Point{{X: 1, Y: 5}}},
		},
	}
	out := fig.Format()
	if out == "" {
		t.Fatal("empty format")
	}
	for _, want := range []string{"T", "a", "b", "x", "y"} {
		if !containsStr(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
