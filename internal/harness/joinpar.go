// Join/group-by parallelism experiment: the intra-operator parallelism
// sweep for the hash-join and group-by µEngines. Not a paper figure — it
// measures this repo's extension of PR 1's partitioned-scan pattern up the
// pipeline: the build input hash-partitions across P join sub-workers, the
// probe routes partition-affine, and group-by workers aggregate partial
// states merged via AggState.Merge.
package harness

import (
	"fmt"
	"math/rand"

	"qpipe"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// JoinBuildTable and JoinProbeTable are the two relations NewJoinEnv loads
// (distinct tables, so the sweep measures operator parallelism rather than
// circular-scan sharing between the join's own inputs).
const (
	JoinBuildTable = "jr"
	JoinProbeTable = "js"
)

// JoinSchema is both join tables' schema: a unique key, a low-cardinality
// group, a measure, and a payload that pads rows so the tables span enough
// pages to be I/O-bound.
func JoinSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("k", tuple.KindInt),
		tuple.Col("g", tuple.KindInt),
		tuple.Col("v", tuple.KindFloat),
		tuple.Col("pad", tuple.KindString),
	)
}

func joinLoad(mgr *sm.Manager, table string, rows int, seed int64) error {
	if _, err := mgr.CreateTable(table, JoinSchema()); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	pad := "0123456789abcdef0123456789abcdef"
	batch := make([]tuple.Tuple, 0, 4096)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := mgr.Load(table, batch)
		batch = batch[:0]
		return err
	}
	for i := 0; i < rows; i++ {
		batch = append(batch, tuple.Tuple{
			tuple.I64(int64(i)),
			tuple.I64(int64(i % 97)),
			tuple.F64(rng.Float64() * 1000),
			tuple.Str(pad),
		})
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// NewJoinEnv loads the two join tables of rows rows each. 100k rows pushes
// the build side well past the hybrid hash join's in-memory limit, so the
// sweep exercises the partitioned (spill) path.
func NewJoinEnv(sc Scale, rows int) (*Env, error) {
	mgr := sm.New(sm.Config{Disk: disk.Config{Spindles: sc.Spindles}, PoolPages: sc.PoolPages})
	if err := joinLoad(mgr, JoinBuildTable, rows, sc.Seed); err != nil {
		return nil, err
	}
	if err := joinLoad(mgr, JoinProbeTable, rows, sc.Seed+1); err != nil {
		return nil, err
	}
	env := &Env{Scale: sc, Disk: mgr.Disk, loadMgr: mgr,
		attach: func(m *sm.Manager) error {
			if _, err := m.AttachTable(JoinBuildTable, JoinSchema()); err != nil {
				return err
			}
			_, err := m.AttachTable(JoinProbeTable, JoinSchema())
			return err
		}}
	return env, nil
}

// JoinParPlan builds the sweep's hash-join probe: jr ⋈ js on the unique key
// under a count aggregate, with an explicit join fan-out (scans inherit the
// runtime's ScanParallelism).
func JoinParPlan(schema *tuple.Schema, par int) plan.Node {
	build := plan.NewTableScan(JoinBuildTable, schema, nil, []int{0, 2}, false)
	probe := plan.NewTableScan(JoinProbeTable, schema, nil, []int{0, 2}, false)
	j := plan.NewHashJoin(build, probe, 0, 0).WithParallelism(par)
	return plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
}

// GroupByParPlan builds the sweep's group-by probe: a full scan of js
// grouped on the 97-value column with count/sum/avg aggregates.
func GroupByParPlan(schema *tuple.Schema, par int) plan.Node {
	scan := plan.NewTableScan(JoinProbeTable, schema, nil, nil, false)
	return plan.NewGroupBy(scan, []int{1}, []expr.AggSpec{
		{Kind: expr.AggCount},
		{Kind: expr.AggSum, Arg: expr.Col(2)},
		{Kind: expr.AggAvg, Arg: expr.Col(2)},
	}).WithParallelism(par)
}

// JoinParallelism sweeps the intra-operator fan-out: for each worker count
// it measures a cold standalone hybrid hash join (jr ⋈ js) and a cold
// standalone group-by, both with scans at the same fan-out so the operator
// under test is fed fast enough to matter.
func JoinParallelism(env *Env, workers []int) (Figure, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	fig := Figure{
		Name:   "JoinPar",
		Title:  "parallel hash join & group-by sweep",
		XLabel: "workers",
		YLabel: "response ms",
	}
	join := Series{Label: "hash join"}
	groupby := Series{Label: "group-by"}
	for _, w := range workers {
		cfg := qpipe.DefaultConfig()
		cfg.ScanParallelism = w
		sys, err := env.NewQPipeWith(fmt.Sprintf("QPipe join-par=%d", w), cfg)
		if err != nil {
			return fig, err
		}
		schema := sys.Manager().MustTable(JoinProbeTable).Schema
		env.SetMeasuring(true)
		jd, err := StandaloneResponse(env, sys, func() plan.Node { return JoinParPlan(schema, w) })
		if err != nil {
			env.SetMeasuring(false)
			return fig, err
		}
		gd, err := StandaloneResponse(env, sys, func() plan.Node { return GroupByParPlan(schema, w) })
		env.SetMeasuring(false)
		if err != nil {
			return fig, err
		}
		join.Points = append(join.Points, Point{X: float64(w), Y: ms(jd)})
		groupby.Points = append(groupby.Points, Point{X: float64(w), Y: ms(gd)})
	}
	fig.Series = []Series{join, groupby}
	return fig, nil
}
