// Overload experiment: resource governance under saturation. Not a paper
// figure — the paper's testbed never pushes past capacity — but the
// governance layer's payoff is only visible there: closed-loop clients
// sweep the offered load well past the engine's concurrency sweet spot,
// once with admission control + statement timeouts (governed) and once
// wide open (ungoverned). The governed arm should hold its p99 roughly
// flat and shed the excess with typed errors; the ungoverned arm's tail
// latency collapses as every query fights for the pool at once.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"qpipe"
	"qpipe/internal/core"
	"qpipe/internal/plan"
)

// OverloadPoint is one (arm, client-count) measurement.
type OverloadPoint struct {
	Clients   int `json:"clients"`
	Attempted int `json:"attempted"`
	Completed int `json:"completed"`
	// Shed counts *OverloadedError rejections, TimedOut counts
	// *DeadlineError terminations (both zero on the ungoverned arm).
	Shed     int `json:"shed"`
	TimedOut int `json:"timed_out"`
	// Latency percentiles over completed queries, measured from submit to
	// fully drained — admission-queue wait included.
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputQPS float64 `json:"throughput_qps"`
}

// OverloadArm is one governance configuration's load sweep.
type OverloadArm struct {
	Name          string          `json:"name"`
	MaxConcurrent int             `json:"max_concurrent"`
	Queue         int             `json:"admission_queue"`
	TimeoutMs     int64           `json:"statement_timeout_ms"`
	Points        []OverloadPoint `json:"points"`
}

// OverloadReport is the JSON document WriteOverloadJSON emits
// (BENCH_OVERLOAD.json).
type OverloadReport struct {
	BigRows          int           `json:"big_rows"`
	QueriesPerClient int           `json:"queries_per_client"`
	Arms             []OverloadArm `json:"arms"`
}

// OverloadParams parameterizes the sweep (zero values take defaults).
type OverloadParams struct {
	Clients          []int         // client counts to sweep (default 2,4,8,16)
	QueriesPerClient int           // closed-loop attempts per client (default 6)
	MaxConcurrent    int           // governed arm: admission slots (default 4)
	Queue            int           // governed arm: FIFO wait-queue depth (default 2×slots)
	Timeout          time.Duration // governed arm: per-query deadline (0 = none)
}

// overloadPlan is the per-client query: sort BIG1 by unique2. Sorts always
// materialize through temp files, so concurrent copies genuinely contend
// for pool pages, disk bandwidth and the sort µEngine — the saturation the
// sweep needs. OSP is disabled per query (see overloadRun) so sharing
// cannot absorb the load.
func overloadPlan(sys System) plan.Node {
	schema := sys.Manager().MustTable("BIG1").Schema
	scan := plan.NewTableScan("BIG1", schema, nil, []int{0, 1}, false)
	return plan.NewSort(scan, []int{1}, false)
}

// Overload runs the load sweep over a Wisconsin environment, returning the
// p99-vs-clients figure and the full report.
func Overload(env *Env, p OverloadParams) (Figure, *OverloadReport, error) {
	if len(p.Clients) == 0 {
		p.Clients = []int{2, 4, 8, 16}
	}
	if p.QueriesPerClient <= 0 {
		p.QueriesPerClient = 6
	}
	if p.MaxConcurrent <= 0 {
		p.MaxConcurrent = 4
	}
	if p.Queue <= 0 {
		p.Queue = 2 * p.MaxConcurrent
	}
	fig := Figure{
		Name:   "Overload",
		Title:  fmt.Sprintf("p99 latency vs offered load (governed: %d slots + %d queue)", p.MaxConcurrent, p.Queue),
		XLabel: "closed-loop clients",
		YLabel: "p99 latency (ms)",
	}
	report := &OverloadReport{QueriesPerClient: p.QueriesPerClient}

	arms := []struct {
		name string
		cfg  func() core.Config
	}{
		{"governed", func() core.Config {
			cfg := qpipe.DefaultConfig()
			cfg.MaxConcurrentQueries = p.MaxConcurrent
			cfg.AdmissionQueue = p.Queue
			return cfg
		}},
		{"ungoverned", qpipe.DefaultConfig},
	}
	var series []Series
	for _, arm := range arms {
		sys, err := env.NewQPipeWith("QPipe "+arm.name, arm.cfg())
		if err != nil {
			return fig, report, err
		}
		qsys, ok := sys.(*QPipeSystem)
		if !ok {
			return fig, report, fmt.Errorf("overload: unexpected system type %T", sys)
		}
		if err := warmup(env, sys, overloadPlan(sys)); err != nil {
			return fig, report, err
		}
		armReport := OverloadArm{Name: arm.name}
		if arm.name == "governed" {
			armReport.MaxConcurrent = p.MaxConcurrent
			armReport.Queue = p.Queue
			armReport.TimeoutMs = p.Timeout.Milliseconds()
		}
		s := Series{Label: arm.name}
		for _, clients := range p.Clients {
			pt, err := overloadRun(qsys, clients, p.QueriesPerClient, armReport.TimeoutMs)
			if err != nil {
				return fig, report, err
			}
			armReport.Points = append(armReport.Points, pt)
			s.Points = append(s.Points, Point{X: float64(clients), Y: pt.P99Ms})
		}
		report.Arms = append(report.Arms, armReport)
		series = append(series, s)
	}
	fig.Series = series
	return fig, report, nil
}

// overloadRun drives one closed-loop point: `clients` goroutines each
// attempt `perClient` queries back to back, retiring shed attempts with a
// short client-side backoff (the retry a governed client would do).
func overloadRun(sys *QPipeSystem, clients, perClient int, timeoutMs int64) (OverloadPoint, error) {
	var mu sync.Mutex
	pt := OverloadPoint{Clients: clients}
	var lats []time.Duration
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := sys.Eng.Runtime()
			for i := 0; i < perClient; i++ {
				opts := core.QueryOptions{DisableOSP: true}
				if timeoutMs > 0 {
					opts.Timeout = time.Duration(timeoutMs) * time.Millisecond
				}
				qStart := time.Now()
				q, err := rt.SubmitOpts(context.Background(), overloadPlan(sys), opts)
				if err != nil {
					var oe *core.OverloadedError
					var de *core.DeadlineError
					switch {
					case errors.As(err, &oe):
						mu.Lock()
						pt.Attempted++
						pt.Shed++
						mu.Unlock()
						time.Sleep(500 * time.Microsecond) // client retry backoff
						continue
					case errors.As(err, &de):
						mu.Lock()
						pt.Attempted++
						pt.TimedOut++
						mu.Unlock()
						continue
					default:
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
				_, derr := q.Result.Drain()
				werr := q.Wait()
				lat := time.Since(qStart)
				mu.Lock()
				pt.Attempted++
				var de *core.DeadlineError
				switch {
				case werr == nil && derr == nil:
					pt.Completed++
					lats = append(lats, lat)
				case errors.As(werr, &de) || errors.As(derr, &de):
					pt.TimedOut++
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("overload client: drain %v, wait %v", derr, werr)
					}
					mu.Unlock()
					return
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return pt, firstErr
	}
	pt.P50Ms = percentileMs(lats, 0.50)
	pt.P99Ms = percentileMs(lats, 0.99)
	if wall > 0 {
		pt.ThroughputQPS = float64(pt.Completed) / wall.Seconds()
	}
	return pt, nil
}

// percentileMs returns the q-th latency percentile in milliseconds
// (nearest-rank over the sorted sample; 0 for an empty sample).
func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(q * float64(len(lats)-1))
	return float64(lats[idx]) / float64(time.Millisecond)
}

// WriteOverloadJSON writes the overload report as indented JSON
// (BENCH_OVERLOAD.json), tracked PR over PR like the other artifacts.
func WriteOverloadJSON(path string, report *OverloadReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
