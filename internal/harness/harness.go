// Package harness reproduces the paper's experimental setup (§5): three
// systems over identical data — "Baseline" (QPipe with OSP disabled),
// "QPipe w/OSP", and "DBMS X" (the conventional iterator engine) — each
// with its own buffer pool over one shared simulated disk, plus the client
// drivers (staggered arrivals for Figures 8-11, closed-loop clients with
// think time for Figures 12-13) and the per-figure experiment functions.
//
// Time scaling: the paper's x-axes are wall-clock seconds on a 2005-era
// 4-disk server where one TPC-H query ran for minutes. The harness
// normalizes interarrival sweeps to fractions of a query's standalone
// response time on the system under test, which preserves every curve's
// shape at any scale factor and disk speed (DESIGN.md §2).
package harness

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"qpipe"
	"qpipe/internal/core"
	"qpipe/internal/plan"
	"qpipe/internal/storage/buffer"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/volcano"
)

// System abstracts an engine under test.
type System interface {
	Name() string
	// Exec runs the plan to completion, discarding results (the paper's
	// client behaviour).
	Exec(ctx context.Context, p plan.Node) error
	// Shares reports cumulative OSP sharing events (0 for non-OSP systems).
	Shares() int64
	// Manager returns the system's storage manager.
	Manager() *sm.Manager
	// Close releases engine resources.
	Close()
}

// QPipeSystem wraps a QPipe engine (with or without OSP).
type QPipeSystem struct {
	name string
	Eng  *qpipe.Engine
	mgr  *sm.Manager
}

// Name implements System.
func (s *QPipeSystem) Name() string { return s.name }

// Exec implements System.
func (s *QPipeSystem) Exec(ctx context.Context, p plan.Node) error {
	res, err := s.Eng.Query(ctx, p)
	if err != nil {
		return err
	}
	_, err = res.Discard()
	return err
}

// Shares implements System.
func (s *QPipeSystem) Shares() int64 { return s.Eng.Runtime().TotalShares() }

// Manager implements System.
func (s *QPipeSystem) Manager() *sm.Manager { return s.mgr }

// Close implements System.
func (s *QPipeSystem) Close() { s.Eng.Close() }

// VolcanoSystem wraps the iterator-model comparator ("DBMS X").
type VolcanoSystem struct {
	Eng *volcano.Engine
	mgr *sm.Manager
}

// Name implements System.
func (s *VolcanoSystem) Name() string { return "DBMS X" }

// Exec implements System.
func (s *VolcanoSystem) Exec(ctx context.Context, p plan.Node) error {
	_, err := s.Eng.RunDiscard(ctx, p)
	return err
}

// Shares implements System.
func (s *VolcanoSystem) Shares() int64 { return 0 }

// Manager implements System.
func (s *VolcanoSystem) Manager() *sm.Manager { return s.mgr }

// Close implements System.
func (s *VolcanoSystem) Close() {}

// Scale parameterizes an experiment environment.
type Scale struct {
	SF        float64       // TPC-H scale factor
	BigRows   int           // Wisconsin BIG1/BIG2 rows
	PoolPages int           // buffer-pool pages per system
	SeqLat    time.Duration // per-block sequential read latency
	RandLat   time.Duration // per-block random read latency
	Spindles  int           // concurrent-latency bound (paper testbed: 4-disk RAID-0)
	Seed      int64
	// BatchSize overrides Config.BatchSize (and thereby the batch recycling
	// pool's array size) on every QPipe system the environment creates;
	// 0 keeps the engine default (qpipe-bench's -batch flag).
	BatchSize int
}

// SmallScale is the fast configuration used by `go test -bench` and unit
// tests: a few hundred pages per table, tens of milliseconds per query.
func SmallScale() Scale {
	return Scale{SF: 0.002, BigRows: 4000, PoolPages: 48, SeqLat: 60 * time.Microsecond, RandLat: 90 * time.Microsecond, Spindles: 2, Seed: 42}
}

// PaperScale is the heavier configuration the CLI uses for figure-quality
// curves (seconds per query).
func PaperScale() Scale {
	return Scale{SF: 0.01, BigRows: 20000, PoolPages: 192, SeqLat: 120 * time.Microsecond, RandLat: 200 * time.Microsecond, Spindles: 4, Seed: 42}
}

// Env is a loaded experiment environment: one shared disk, per-system
// storage managers created on demand.
type Env struct {
	Scale Scale
	Disk  *disk.Disk

	loadMgr  *sm.Manager
	attach   func(mgr *sm.Manager) error
	withCIdx bool

	mu      sync.Mutex
	systems []System
}

// NewTPCHEnv loads the TPC-H dataset (optionally with the clustered
// indexes Figure 9 needs) at the given scale.
func NewTPCHEnv(sc Scale, withClustered bool) (*Env, error) {
	mgr := sm.New(sm.Config{Disk: disk.Config{Spindles: sc.Spindles}, PoolPages: sc.PoolPages})
	if _, err := tpchLoad(mgr, sc.SF, sc.Seed, withClustered); err != nil {
		return nil, err
	}
	env := &Env{Scale: sc, Disk: mgr.Disk, loadMgr: mgr, withCIdx: withClustered,
		attach: func(m *sm.Manager) error { return tpchAttach(m, withClustered) }}
	return env, nil
}

// NewWisconsinEnv loads the Wisconsin dataset at the given scale.
func NewWisconsinEnv(sc Scale) (*Env, error) {
	mgr := sm.New(sm.Config{Disk: disk.Config{Spindles: sc.Spindles}, PoolPages: sc.PoolPages})
	if err := wisconsinLoad(mgr, sc.BigRows, sc.Seed); err != nil {
		return nil, err
	}
	env := &Env{Scale: sc, Disk: mgr.Disk, loadMgr: mgr,
		attach: wisconsinAttach}
	return env, nil
}

// SetMeasuring toggles the disk latency model: off for loading and
// warmup, on for measured runs.
func (e *Env) SetMeasuring(on bool) {
	if on {
		e.Disk.SetLatency(e.Scale.SeqLat, e.Scale.RandLat, 0)
	} else {
		e.Disk.SetLatency(0, 0, 0)
	}
}

func (e *Env) newManager(policy buffer.Policy) (*sm.Manager, error) {
	mgr := sm.NewSharedDisk(e.Disk, e.Scale.PoolPages, policy)
	if err := e.attach(mgr); err != nil {
		return nil, err
	}
	return mgr, nil
}

// NewQPipe creates a "QPipe w/OSP" system (plain LRU pool, like the
// BerkeleyDB-backed prototype).
func (e *Env) NewQPipe() (System, error) { return e.newQPipe("QPipe w/OSP", qpipe.DefaultConfig()) }

// NewBaseline creates the "Baseline" system: the same engine, OSP off.
func (e *Env) NewBaseline() (System, error) { return e.newQPipe("Baseline", qpipe.BaselineConfig()) }

// NewQPipeWith creates a QPipe system with a custom runtime config
// (ablation experiments).
func (e *Env) NewQPipeWith(name string, cfg core.Config) (System, error) {
	return e.newQPipe(name, cfg)
}

func (e *Env) newQPipe(name string, cfg core.Config) (System, error) {
	if e.Scale.BatchSize > 0 {
		cfg.BatchSize = e.Scale.BatchSize
	}
	mgr, err := e.newManager(buffer.NewLRU())
	if err != nil {
		return nil, err
	}
	sys := &QPipeSystem{name: name, Eng: qpipe.New(mgr, cfg), mgr: mgr}
	e.track(sys)
	return sys, nil
}

// NewVolcano creates the "DBMS X" comparator: iterator engine with a
// scan-resistant (2Q) buffer pool, per the paper's observation that X's
// pool shared better than BerkeleyDB's LRU.
func (e *Env) NewVolcano() (System, error) {
	mgr, err := e.newManager(buffer.NewTwoQ(e.Scale.PoolPages))
	if err != nil {
		return nil, err
	}
	sys := &VolcanoSystem{Eng: volcano.New(mgr), mgr: mgr}
	e.track(sys)
	return sys, nil
}

func (e *Env) track(s System) {
	e.mu.Lock()
	e.systems = append(e.systems, s)
	e.mu.Unlock()
}

// Close shuts down every system created from this environment.
func (e *Env) Close() {
	e.mu.Lock()
	systems := e.systems
	e.systems = nil
	e.mu.Unlock()
	for _, s := range systems {
		s.Close()
	}
}

// ---- Measurement primitives ---------------------------------------------------

// StaggeredResult is the outcome of a staggered-arrival run.
type StaggeredResult struct {
	Total      time.Duration   // first submit to last completion
	PerQuery   []time.Duration // per-query response times
	BlocksRead int64           // disk blocks read during the run
	Shares     int64           // OSP sharing events during the run
	Err        error
}

// RunStaggered submits plans[i] at i*interarrival and waits for all to
// complete, measuring total elapsed time and disk blocks read.
func RunStaggered(env *Env, sys System, plans []plan.Node, interarrival time.Duration) StaggeredResult {
	env.Disk.ResetStats()
	sharesBefore := sys.Shares()
	ctx := context.Background()
	res := StaggeredResult{PerQuery: make([]time.Duration, len(plans))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	start := time.Now()
	for i, p := range plans {
		if i > 0 && interarrival > 0 {
			target := time.Duration(i) * interarrival
			if sleep := target - time.Since(start); sleep > 0 {
				time.Sleep(sleep)
			}
		}
		wg.Add(1)
		go func(i int, p plan.Node) {
			defer wg.Done()
			qStart := time.Now()
			err := sys.Exec(ctx, p)
			mu.Lock()
			res.PerQuery[i] = time.Since(qStart)
			if err != nil && res.Err == nil {
				res.Err = err
			}
			mu.Unlock()
		}(i, p)
	}
	wg.Wait()
	res.Total = time.Since(start)
	res.BlocksRead = env.Disk.Stats().Reads
	res.Shares = sys.Shares() - sharesBefore
	return res
}

// ClosedLoopResult is the outcome of a closed-loop multi-client run.
type ClosedLoopResult struct {
	Elapsed     time.Duration
	Completed   int64
	Throughput  float64 // queries per hour of simulated wall time
	AvgResponse time.Duration
	Err         error
}

// RunClosedLoop drives nClients closed-loop clients, each executing
// queriesPerClient queries drawn from mk (seeded per client), sleeping
// think between completion and next submission.
func RunClosedLoop(env *Env, sys System, nClients, queriesPerClient int, think time.Duration, mk func(rng *rand.Rand) plan.Node) ClosedLoopResult {
	env.Disk.ResetStats()
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var res ClosedLoopResult
	var totalResp time.Duration
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(env.Scale.Seed + int64(c)*7919))
			for q := 0; q < queriesPerClient; q++ {
				p := mk(rng)
				qStart := time.Now()
				err := sys.Exec(ctx, p)
				d := time.Since(qStart)
				mu.Lock()
				res.Completed++
				totalResp += d
				if err != nil && res.Err == nil {
					res.Err = err
				}
				mu.Unlock()
				if think > 0 && q < queriesPerClient-1 {
					time.Sleep(think)
				}
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Completed > 0 {
		res.AvgResponse = totalResp / time.Duration(res.Completed)
		res.Throughput = float64(res.Completed) / res.Elapsed.Hours()
	}
	return res
}

// StandaloneResponse measures one query's response time on an idle system
// with a cold pool (used to normalize interarrival sweeps).
func StandaloneResponse(env *Env, sys System, mk func() plan.Node) (time.Duration, error) {
	sys.Manager().Pool.Invalidate()
	env.Disk.ResetStats()
	start := time.Now()
	err := sys.Exec(context.Background(), mk())
	return time.Since(start), err
}

// ---- Reporting ----------------------------------------------------------------

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced paper figure: a set of curves plus axis labels.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table (one row per X, one
// column per series).
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.Name, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%18s", s.Label)
	}
	b.WriteString(fmt.Sprintf("    (%s)\n", f.YLabel))
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-14.3g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%18.4g", s.Points[i].Y)
			} else {
				fmt.Fprintf(&b, "%18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
