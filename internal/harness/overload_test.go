package harness

import (
	"testing"
	"time"
)

// TestOverloadShape runs a miniature load sweep end to end: both arms
// measured, every attempt accounted for (completed + shed + timed out =
// attempted), the governed arm sheds once the offered load exceeds
// slots + queue, and the ungoverned arm never sheds.
func TestOverloadShape(t *testing.T) {
	sc := SmallScale()
	sc.BigRows = 2000
	env, err := NewWisconsinEnv(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, report, err := Overload(env, OverloadParams{
		Clients:          []int{2, 8},
		QueriesPerClient: 3,
		MaxConcurrent:    2,
		Queue:            2,
		Timeout:          5 * time.Second, // generous: exercises the plumbing, not expiry
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(report.Arms) != 2 {
		t.Fatalf("arms: %d series, %d report arms", len(fig.Series), len(report.Arms))
	}
	for _, arm := range report.Arms {
		if len(arm.Points) != 2 {
			t.Fatalf("%s: %d points", arm.Name, len(arm.Points))
		}
		for _, pt := range arm.Points {
			if pt.Completed+pt.Shed+pt.TimedOut != pt.Attempted {
				t.Fatalf("%s @%d clients: %d+%d+%d != %d attempted",
					arm.Name, pt.Clients, pt.Completed, pt.Shed, pt.TimedOut, pt.Attempted)
			}
			if pt.Completed == 0 {
				t.Fatalf("%s @%d clients: nothing completed", arm.Name, pt.Clients)
			}
			if pt.P99Ms < pt.P50Ms {
				t.Fatalf("%s @%d clients: p99 %f < p50 %f", arm.Name, pt.Clients, pt.P99Ms, pt.P50Ms)
			}
			if arm.Name == "ungoverned" && (pt.Shed != 0 || pt.TimedOut != 0) {
				t.Fatalf("ungoverned arm shed/timed out: %+v", pt)
			}
		}
	}
	// 8 closed-loop clients against 2 slots + 2 queue must shed.
	governed := report.Arms[0]
	if got := governed.Points[1].Shed; got == 0 {
		t.Fatalf("governed arm @8 clients shed nothing (completed %d)", governed.Points[1].Completed)
	}
}
