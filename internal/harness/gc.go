// GC-pressure experiment: allocator and collector cost of the hot data
// path. Not a paper figure — the paper's 2005 prototype ran on C++/
// BerkeleyDB where this axis was invisible; in Go, allocations per tuple
// and GC pauses are the constant-factor ceiling once intra-operator
// parallelism is in place, so the repo tracks them alongside wall clock.
// The experiment runs a cold scan, hybrid hash join and hash group-by at
// several fan-outs and reports allocations, bytes and GC pause per query,
// measured process-wide around each run.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"qpipe"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// GCStat is one workload × fan-out memory measurement.
type GCStat struct {
	Workload    string  `json:"workload"`
	Par         int     `json:"par"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	GCPauseMs   float64 `json:"gc_pause_ms"`
	NumGC       uint32  `json:"num_gc"`
	WallMs      float64 `json:"wall_ms"`
}

// GCReport is the JSON document WriteGCJSON emits (BENCH_GC.json): the
// memory trajectory of the engine's hot path, tracked PR over PR the way
// the wall-clock figures are.
type GCReport struct {
	Rows  int      `json:"rows"`
	Batch int      `json:"batch_size"`
	Stats []GCStat `json:"stats"`
}

// gcScanPlan is the scan workload: a full unprojected scan of the probe
// table under a count aggregate (the pure page-stream path).
func gcScanPlan(schema *tuple.Schema) plan.Node {
	return plan.NewAggregate(plan.NewTableScan(JoinProbeTable, schema, nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}})
}

// GCPressure measures allocs/op, bytes/op and GC pause totals for the
// scan, hash-join and group-by workloads over a NewJoinEnv environment at
// each fan-out in pars. Each measurement is one cold query wrapped in
// runtime.ReadMemStats deltas after a forced collection, so it captures
// everything the engine allocates on behalf of the query (including its
// parallel sub-workers).
func GCPressure(env *Env, pars []int) (Figure, *GCReport, error) {
	if len(pars) == 0 {
		pars = []int{1, 8}
	}
	fig := Figure{
		Name:   "GC pressure",
		Title:  "allocations per query (scan, hash join, group-by)",
		XLabel: "workers",
		YLabel: "allocs/op",
	}
	report := &GCReport{}
	workloads := []struct {
		name string
		mk   func(schema *tuple.Schema, par int) plan.Node
	}{
		{"scan", func(s *tuple.Schema, par int) plan.Node { return gcScanPlan(s) }},
		{"join", JoinParPlan},
		{"groupby", GroupByParPlan},
	}
	series := make([]Series, len(workloads))
	for i, w := range workloads {
		series[i].Label = w.name
	}
	for _, par := range pars {
		cfg := qpipe.DefaultConfig()
		cfg.ScanParallelism = par
		if env.Scale.BatchSize > 0 {
			cfg.BatchSize = env.Scale.BatchSize
		}
		report.Batch = cfg.BatchSize
		sys, err := env.NewQPipeWith(fmt.Sprintf("QPipe gc par=%d", par), cfg)
		if err != nil {
			return fig, report, err
		}
		schema := sys.Manager().MustTable(JoinProbeTable).Schema
		for i, w := range workloads {
			// Warm once (code paths, leaf maps) outside the measurement.
			env.SetMeasuring(false)
			if err := sys.Exec(context.Background(), w.mk(schema, par)); err != nil {
				return fig, report, err
			}
			// measureGC runs through StandaloneResponse, which cold-starts
			// the pool itself; no separate invalidation needed here.
			env.SetMeasuring(true)
			st, err := measureGC(env, sys, w.mk(schema, par))
			env.SetMeasuring(false)
			if err != nil {
				return fig, report, err
			}
			st.Workload, st.Par = w.name, par
			report.Stats = append(report.Stats, st)
			series[i].Points = append(series[i].Points, Point{X: float64(par), Y: st.AllocsPerOp})
		}
	}
	fig.Series = series
	return fig, report, nil
}

// measureGC runs one query between ReadMemStats snapshots (after a forced
// GC, so the deltas belong to this query rather than leftover garbage).
func measureGC(env *Env, sys System, p plan.Node) (GCStat, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	d, err := StandaloneResponse(env, sys, func() plan.Node { return p })
	if err != nil {
		return GCStat{}, err
	}
	runtime.ReadMemStats(&after)
	return GCStat{
		AllocsPerOp: float64(after.Mallocs - before.Mallocs),
		BytesPerOp:  float64(after.TotalAlloc - before.TotalAlloc),
		GCPauseMs:   float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6,
		NumGC:       after.NumGC - before.NumGC,
		WallMs:      float64(d.Milliseconds()),
	}, nil
}

// WriteGCJSON writes the GC report as indented JSON (BENCH_GC.json), so the
// repo's benchmark artifacts track the memory trajectory alongside wall
// clock.
func WriteGCJSON(path string, report *GCReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
