package harness

import (
	"testing"
	"time"
)

// midScale gives queries long enough lifetimes that a second arrival at
// 30-50% of the response time lands well inside the windows of opportunity.
func midScale() Scale {
	return Scale{SF: 0.002, BigRows: 3000, PoolPages: 48,
		SeqLat: 50 * time.Microsecond, RandLat: 80 * time.Microsecond, Spindles: 1, Seed: 11}
}

// assertSharingWins checks the common Figures 9-11 shape: at small-to-mid
// interarrival fractions QPipe w/OSP total response is clearly below
// Baseline's.
func assertSharingWins(t *testing.T, fig Figure, atIdx int, factor float64) {
	t.Helper()
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	base, osp := fig.Series[0], fig.Series[1]
	b, o := base.Points[atIdx].Y, osp.Points[atIdx].Y
	if o*factor >= b {
		t.Errorf("%s at frac %.2f: OSP %.0fms not %.2fx better than baseline %.0fms",
			fig.Name, base.Points[atIdx].X, o, factor, b)
	}
	t.Log("\n" + fig.Format())
}

func TestFig9OrderedScansShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewTPCHEnv(midScale(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, err := Fig9OrderedScans(env, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	// The split must let Q2 reuse the in-progress ordered scans: some
	// speedup over baseline is required (paper shows ~2x across the WoP).
	assertSharingWins(t, fig, 0, 1.05)
}

func TestFig10SortMergeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewWisconsinEnv(midScale())
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, err := Fig10SortMerge(env, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	assertSharingWins(t, fig, 0, 1.05)
}

func TestFig11HashJoinShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewTPCHEnv(midScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, err := Fig11HashJoin(env, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	assertSharingWins(t, fig, 0, 1.05)
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, err := Fig13ThinkTime(env, []float64{0, 2}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	// Response time should drop (or at least not rise) as think time grows
	// (lower system load), for both systems.
	for _, s := range fig.Series {
		if s.Points[1].Y > s.Points[0].Y*1.5 {
			t.Errorf("%s: response grew with think time: %v", s.Label, s.Points)
		}
	}
	t.Log("\n" + fig.Format())
}
