// Figure 4a reproduction: measured windows of opportunity. For each of the
// paper's four overlap classes we start query Q1, submit an overlapping Q2
// once Q1 has progressed a given fraction of its lifetime, and report Q2's
// *gain* — the fraction of its standalone I/O cost it avoided by sharing:
//
//	gain(f) = 1 - marginalBlocks(Q2 @ f) / standaloneBlocks(Q2)
//
// Expected shapes (paper §3.2): linear decays ~1-f (circular scan re-reads
// the missed prefix), full stays ~1 for the whole lifetime (single
// aggregate), step stays ~1 until the operator's first output leaves the
// replay window, spike is ~0 anywhere past the start.
package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/tuple"
	"qpipe/internal/workload/tpch"
)

// wopClass describes one measured overlap class.
type wopClass struct {
	name string
	// mk returns the plan for instance i (0 = Q1, 1 = Q2); classes whose
	// sharing is signature-exact return identical plans, the linear class
	// varies the predicate so only the scan overlaps.
	mk func(i int) plan.Node
}

func wopClasses() []wopClass {
	return []wopClass{
		{name: "linear", mk: func(i int) plan.Node {
			// Unordered scans with different predicates: only the circular
			// scan is shared; Q2 re-reads the prefix it missed.
			p := tpch.DefaultParams()
			p.Q6Quantity = float64(24 + i) // differentiates the signatures
			return tpch.Q6(p)
		}},
		{name: "step", mk: func(int) plan.Node {
			// Identical hash joins: shareable through build and early probe
			// (until output exceeds the replay window).
			return tpch.Q12(tpch.DefaultParams())
		}},
		{name: "full", mk: func(int) plan.Node {
			// Identical single-aggregate queries: shareable for the entire
			// lifetime.
			return tpch.Q6(tpch.DefaultParams())
		}},
		{name: "spike", mk: func(int) plan.Node {
			// Order-sensitive clustered scans delivered to an
			// order-sensitive consumer: no window past the start (beyond
			// the small buffering-enhancement window). LINEITEM is used so
			// the scanned index exceeds the buffer pool — otherwise pool
			// hits mask the lack of OSP sharing at this scale.
			return plan.NewIndexScan("LINEITEM", tpch.LineitemSchema, "l_orderkey",
				tuple.Value{}, tuple.Value{}, true, true, nil, nil)
		}},
	}
}

// Fig4aWindowsOfOpportunity measures Q2 gain vs Q1 progress for the four
// overlap classes. Requires a TPC-H environment loaded with clustered
// indexes (the spike class scans one).
func Fig4aWindowsOfOpportunity(env *Env) (Figure, error) {
	sys, err := env.NewQPipe()
	if err != nil {
		return Figure{}, err
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	fracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	fig := Figure{
		Name:   "Figure 4a",
		Title:  "Measured windows of opportunity: Q2 gain vs Q1 progress",
		XLabel: "Q1 progress",
		YLabel: "Q2 gain (I/O saved)",
	}
	ctx := context.Background()
	for _, cls := range wopClasses() {
		if err := warmup(env, sys, cls.mk(1)); err != nil {
			return fig, err
		}
		// Standalone cost and response of Q2's plan, cold.
		if err := sys.Manager().Pool.Invalidate(); err != nil {
			return fig, err
		}
		env.Disk.ResetStats()
		t0 := time.Now()
		if err := sys.Exec(ctx, cls.mk(1)); err != nil {
			return fig, fmt.Errorf("%s standalone: %w", cls.name, err)
		}
		standaloneBlocks := env.Disk.Stats().Reads
		standaloneResp := time.Since(t0)
		// Q1 standalone cost (for marginal attribution).
		if err := sys.Manager().Pool.Invalidate(); err != nil {
			return fig, err
		}
		env.Disk.ResetStats()
		if err := sys.Exec(ctx, cls.mk(0)); err != nil {
			return fig, fmt.Errorf("%s q1 standalone: %w", cls.name, err)
		}
		q1Blocks := env.Disk.Stats().Reads

		s := Series{Label: cls.name}
		for _, f := range fracs {
			if err := sys.Manager().Pool.Invalidate(); err != nil {
				return fig, err
			}
			env.Disk.ResetStats()
			var wg sync.WaitGroup
			var err1, err2 error
			wg.Add(1)
			go func() {
				defer wg.Done()
				err1 = sys.Exec(ctx, cls.mk(0))
			}()
			time.Sleep(time.Duration(f * float64(standaloneResp)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				err2 = sys.Exec(ctx, cls.mk(1))
			}()
			wg.Wait()
			if err1 != nil || err2 != nil {
				return fig, fmt.Errorf("%s @%.1f: %v %v", cls.name, f, err1, err2)
			}
			marginal := env.Disk.Stats().Reads - q1Blocks
			if marginal < 0 {
				marginal = 0
			}
			gain := 1 - float64(marginal)/float64(max64(standaloneBlocks, 1))
			if gain < 0 {
				gain = 0
			}
			s.Points = append(s.Points, Point{X: f, Y: gain})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// OSPOverheadResult quantifies the §5 claim that "when running QPipe with
// queries that present no sharing opportunities, the overhead of the OSP
// coordinator is negligible".
type OSPOverheadResult struct {
	BaselineAvg time.Duration
	OSPAvg      time.Duration
	OverheadPct float64
}

// OSPOverhead runs a stream of non-overlapping queries (distinct tables /
// disjoint signatures, serial submission) on Baseline and on QPipe w/OSP
// and compares mean response times.
func OSPOverhead(env *Env, queries int) (OSPOverheadResult, error) {
	base, err := env.NewBaseline()
	if err != nil {
		return OSPOverheadResult{}, err
	}
	osp, err := env.NewQPipe()
	if err != nil {
		return OSPOverheadResult{}, err
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	ctx := context.Background()
	run := func(sys System) (time.Duration, error) {
		if err := warmup(env, sys, tpch.Q6(tpch.DefaultParams())); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < queries; i++ {
			p := tpch.DefaultParams()
			p.Q6Year = 1993 + i%5 // distinct signatures, run serially
			if err := sys.Exec(ctx, tpch.Q6(p)); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(queries), nil
	}
	var res OSPOverheadResult
	if res.BaselineAvg, err = run(base); err != nil {
		return res, err
	}
	if res.OSPAvg, err = run(osp); err != nil {
		return res, err
	}
	res.OverheadPct = 100 * (float64(res.OSPAvg) - float64(res.BaselineAvg)) / float64(res.BaselineAvg)
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
