package harness

import "testing"

func TestJoinParallelismSweep(t *testing.T) {
	sc := SmallScale()
	sc.Spindles = 2
	env, err := NewJoinEnv(sc, 4000)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	fig, err := JoinParallelism(env, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points: %d", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s non-positive response at P%v: %v", s.Label, p.X, p.Y)
			}
		}
	}
	t.Log("\n" + fig.Format())
}
