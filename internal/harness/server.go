// Server experiment: the multi-client OSP payoff measured end to end over
// the network front end. The paper's central claim — sharing opportunities
// grow with concurrency — is only visible when many independent clients
// hit the engine at once, which is exactly what a network server provides:
// each swept point dials N real loopback connections, deals the tpchmix
// workload round-robin across them, and records share count, shed count
// and latency percentiles, once with OSP and once with every query opted
// out. The OSP arm should win on both shares and tail latency once the
// client count clears the engine's admission width.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"qpipe"
	"qpipe/client"
	"qpipe/internal/workload/sqlmix"
	"qpipe/sql"
)

// ServerPoint is one (arm, connection-count) measurement. Latency is
// measured client-side from Query submit to fully drained rows, so it
// includes admission-queue wait, wire framing and the row stream.
type ServerPoint struct {
	Clients   int `json:"clients"`
	Attempted int `json:"attempted"`
	Completed int `json:"completed"`
	// Shed counts *qpipe.OverloadedError rejections surfaced through the
	// wire error frames (errors.As matches across the network boundary).
	Shed int   `json:"shed"`
	Rows int64 `json:"rows"`
	// Shares is the osp_shares delta over the point, read from the wire
	// stats endpoint by a monitor connection.
	Shares        int64   `json:"shares"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputQPS float64 `json:"throughput_qps"`
}

// ServerArm is one sharing configuration's connection sweep.
type ServerArm struct {
	Name   string        `json:"name"`
	OSP    bool          `json:"osp"`
	Points []ServerPoint `json:"points"`
}

// ServerReport is the JSON document WriteServerJSON emits
// (BENCH_SERVER.json).
type ServerReport struct {
	OrdersRows       int         `json:"orders_rows"`
	QueriesPerClient int         `json:"queries_per_client"`
	MaxConcurrent    int         `json:"max_concurrent"`
	AdmissionQueue   int         `json:"admission_queue"`
	Arms             []ServerArm `json:"arms"`
}

// ServerParams parameterizes the sweep (zero values take defaults).
type ServerParams struct {
	Clients          []int // connection counts to sweep (default 8,16,32,64,128)
	QueriesPerClient int   // queries per connection (default 4)
	Rows             int   // orders rows in the tpchmix dataset (default 20000)
	MaxConcurrent    int   // engine admission slots (default 16)
	Queue            int   // admission wait-queue depth (default 4×slots)
}

// Server runs the network sweep, returning the p99-vs-connections figure
// and the full report. Each arm gets a fresh engine and an in-process
// server on a loopback listener; clients are real TCP connections through
// the public client package, so the measured path is the one a remote
// application would take.
func Server(p ServerParams) (Figure, *ServerReport, error) {
	if len(p.Clients) == 0 {
		p.Clients = []int{8, 16, 32, 64, 128}
	}
	if p.QueriesPerClient <= 0 {
		p.QueriesPerClient = 4
	}
	if p.Rows <= 0 {
		p.Rows = 20_000
	}
	if p.MaxConcurrent <= 0 {
		p.MaxConcurrent = 16
	}
	if p.Queue <= 0 {
		p.Queue = 4 * p.MaxConcurrent
	}
	fig := Figure{
		Name:   "Server",
		Title:  fmt.Sprintf("p99 latency vs client connections (%d admission slots + %d queue)", p.MaxConcurrent, p.Queue),
		XLabel: "client connections",
		YLabel: "p99 latency (ms)",
	}
	report := &ServerReport{
		OrdersRows:       p.Rows,
		QueriesPerClient: p.QueriesPerClient,
		MaxConcurrent:    p.MaxConcurrent,
		AdmissionQueue:   p.Queue,
	}

	// The mix's SET statements travel over the wire per connection; the
	// SELECTs are dealt round-robin, so neighbouring connections run the
	// same statement and give OSP something to share.
	sets, queries, err := splitMix(sqlmix.TPCHMix())
	if err != nil {
		return fig, report, err
	}

	arms := []struct {
		name string
		osp  bool
	}{
		{"osp-on", true},
		{"osp-off", false},
	}
	for _, arm := range arms {
		armReport := ServerArm{Name: arm.name, OSP: arm.osp}
		err := func() error {
			db, err := qpipe.Open(qpipe.Options{
				PoolPages:            256,
				MaxConcurrentQueries: p.MaxConcurrent,
				AdmissionQueue:       p.Queue,
			})
			if err != nil {
				return err
			}
			defer db.Close()
			if err := sqlmix.Populate(db, p.Rows, p.Rows/15+1); err != nil {
				return err
			}
			srv := qpipe.NewServer(db, qpipe.ServerOptions{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go srv.Serve(ln)
			defer srv.Shutdown()
			addr := ln.Addr().String()

			for _, clients := range p.Clients {
				pt, err := serverRun(db, addr, clients, p.QueriesPerClient, sets, queries, arm.osp)
				if err != nil {
					return err
				}
				armReport.Points = append(armReport.Points, pt)
			}
			return nil
		}()
		if err != nil {
			return fig, report, err
		}
		report.Arms = append(report.Arms, armReport)
		s := Series{Label: arm.name}
		for _, pt := range armReport.Points {
			s.Points = append(s.Points, Point{X: float64(pt.Clients), Y: pt.P99Ms})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, report, nil
}

// serverRun drives one point: `clients` loopback connections each running
// `perClient` queries back to back. Shed attempts are retired with a short
// client-side backoff, mirroring the overload sweep's closed loop.
func serverRun(db *qpipe.DB, addr string, clients, perClient int, sets, queries []string, osp bool) (ServerPoint, error) {
	if err := db.DropCaches(); err != nil {
		return ServerPoint{}, err
	}
	db.SetDiskLatency(25*time.Microsecond, 40*time.Microsecond, 0)
	defer db.SetDiskLatency(0, 0, 0)

	ctx := context.Background()
	monitor, err := client.Connect(ctx, addr)
	if err != nil {
		return ServerPoint{}, err
	}
	defer monitor.Close()
	before, err := monitor.Stats(ctx)
	if err != nil {
		return ServerPoint{}, err
	}

	var opts []client.Option
	if !osp {
		opts = append(opts, client.WithoutOSP())
	}

	var mu sync.Mutex
	pt := ServerPoint{Clients: clients}
	var lats []time.Duration
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := dialRetry(ctx, addr)
			if err != nil {
				fail(fmt.Errorf("client %d connect: %w", c, err))
				return
			}
			defer conn.Close()
			for _, set := range sets {
				rows, err := conn.Query(ctx, set)
				if err == nil {
					_, err = rows.Discard()
				}
				if err != nil {
					fail(fmt.Errorf("client %d %q: %w", c, set, err))
					return
				}
			}
			for i := 0; i < perClient; i++ {
				q := queries[(c+i)%len(queries)]
				qStart := time.Now()
				rows, err := conn.Query(ctx, q, opts...)
				var n int64
				if err == nil {
					n, err = rows.Discard()
				}
				lat := time.Since(qStart)
				if err != nil {
					var oe *qpipe.OverloadedError
					if errors.As(err, &oe) {
						mu.Lock()
						pt.Attempted++
						pt.Shed++
						mu.Unlock()
						time.Sleep(500 * time.Microsecond) // client retry backoff
						continue
					}
					fail(fmt.Errorf("client %d query %q: %w", c, q, err))
					return
				}
				mu.Lock()
				pt.Attempted++
				pt.Completed++
				pt.Rows += n
				lats = append(lats, lat)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return pt, firstErr
	}

	after, err := monitor.Stats(ctx)
	if err != nil {
		return pt, err
	}
	pt.Shares = after["osp_shares"] - before["osp_shares"]
	pt.P50Ms = percentileMs(lats, 0.50)
	pt.P99Ms = percentileMs(lats, 0.99)
	if wall > 0 {
		pt.ThroughputQPS = float64(pt.Completed) / wall.Seconds()
	}
	return pt, nil
}

// dialRetry absorbs the transient accept-queue pressure of launching
// hundreds of simultaneous dials against one listener.
func dialRetry(ctx context.Context, addr string) (*client.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		conn, err := client.Connect(ctx, addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(time.Duration(1+attempt) * 2 * time.Millisecond)
	}
	return nil, lastErr
}

// splitMix parses a mix script into its SET statements and SELECT queries,
// both rendered canonically for transmission over the wire.
func splitMix(text string) (sets, queries []string, err error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return nil, nil, err
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *sql.Set:
			sets = append(sets, s.String())
		case *sql.Select:
			queries = append(queries, s.String())
		default:
			return nil, nil, fmt.Errorf("server sweep: mix files hold SELECT and SET statements only, got %T (%s)", stmt, stmt)
		}
	}
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("server sweep: no SELECT statements in mix")
	}
	return sets, queries, nil
}

// WriteServerJSON writes the server sweep report as indented JSON
// (BENCH_SERVER.json), tracked PR over PR like the other artifacts.
func WriteServerJSON(path string, report *ServerReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
