package harness

import (
	"context"
	"testing"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/plan"
	"qpipe/internal/workload/tpch"
)

// Ablations of the design choices DESIGN.md §5 calls out. These are not
// paper figures; they verify each knob does what it claims.

// TestAblationLateActivation: with late activation disabled, the
// merge-join split cannot happen (children start scanning immediately), so
// two staggered Q4 merge-join queries share less.
func TestAblationLateActivation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewTPCHEnv(midScale(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	run := func(cfg core.Config, name string) int64 {
		sys, err := env.NewQPipeWith(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		env.SetMeasuring(true)
		defer env.SetMeasuring(false)
		mk := func() plan.Node { return tpch.Q4MergeJoin(tpch.DefaultParams()) }
		if err := warmup(env, sys, mk()); err != nil {
			t.Fatal(err)
		}
		standalone, err := StandaloneResponse(env, sys, mk)
		if err != nil {
			t.Fatal(err)
		}
		sys.Manager().Pool.Invalidate()
		res := RunStaggered(env, sys, []plan.Node{mk(), mk()}, standalone*4/10)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Shares
	}
	withLA := core.DefaultConfig()
	withoutLA := core.DefaultConfig()
	withoutLA.LateActivation = false
	sharesWith := run(withLA, "qpipe-la")
	sharesWithout := run(withoutLA, "qpipe-nola")
	t.Logf("shares with late activation: %d, without: %d", sharesWith, sharesWithout)
	if sharesWith == 0 {
		t.Error("late activation on: expected the merge-join split to share")
	}
}

// TestAblationReplayWindow: with a zero replay window the hash-join attach
// degrades to strict step semantics — a satellite arriving after the first
// output tuple cannot attach at the join, though scans still share.
func TestAblationReplayWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	env, err := NewTPCHEnv(midScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	run := func(replay int, name string) map[plan.OpType]int64 {
		cfg := core.DefaultConfig()
		cfg.ReplayWindow = replay
		sys, err := env.NewQPipeWith(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		qs := sys.(*QPipeSystem)
		env.SetMeasuring(true)
		defer env.SetMeasuring(false)
		mk := func() plan.Node { return tpch.Q4HashJoin(tpch.DefaultParams()) }
		if err := warmup(env, sys, mk()); err != nil {
			t.Fatal(err)
		}
		standalone, err := StandaloneResponse(env, sys, mk)
		if err != nil {
			t.Fatal(err)
		}
		sys.Manager().Pool.Invalidate()
		// Arrive mid-probe: past the first output tuple.
		res := RunStaggered(env, sys, []plan.Node{mk(), mk()}, standalone*6/10)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return qs.Eng.Stats().SharesByOp
	}
	generous := run(1<<20, "qpipe-replay-big")
	strict := run(0, "qpipe-replay-0")
	t.Logf("shares with big replay: %v, strict: %v", generous, strict)
	// With an effectively unlimited replay the whole join (or an ancestor)
	// dedupes; with none, sharing must fall back to the scans.
	if generous[plan.OpHashJoin]+generous[plan.OpSort]+generous[plan.OpGroupBy] == 0 {
		t.Error("generous replay: expected join-or-above sharing")
	}
	if strict[plan.OpTableScan] == 0 {
		t.Error("strict replay: expected scan-level sharing fallback")
	}
}

// TestAblationFixedWorkerPools: the engine must behave identically (same
// results) under the paper's fixed per-µEngine thread pools, provided the
// pool is deep enough for the plan shapes in use.
func TestAblationFixedWorkerPools(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	cfg := core.DefaultConfig()
	cfg.WorkersPerEngine = 4
	sys, err := env.NewQPipeWith("qpipe-fixed", cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := tpch.DefaultParams()
	for _, qn := range tpch.MixQueries {
		if err := sys.Exec(context.Background(), tpch.Query(qn, params)); err != nil {
			t.Fatalf("Q%d under fixed pools: %v", qn, err)
		}
	}
}

// TestAblationDeadlockDetectorOff: with the detector disabled the engine
// still completes ordinary (acyclic) workloads.
func TestAblationDeadlockDetectorOff(t *testing.T) {
	env, err := NewTPCHEnv(tinyScale(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	cfg := core.DefaultConfig()
	cfg.DeadlockInterval = -1 // disabled
	sys, err := env.NewQPipeWith("qpipe-nodd", cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sys.Exec(context.Background(), tpch.Q12(tpch.DefaultParams())); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("suspiciously slow without detector")
	}
}
