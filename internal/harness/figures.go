// Per-figure experiment functions. Each regenerates one table/figure from
// the paper's §5 (see DESIGN.md §4 for the full index) and returns a
// Figure ready for printing. The experiments follow the captions exactly:
// which systems run, which queries, which knob sweeps.
package harness

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/storage/sm"
	"qpipe/internal/workload/tpch"
	"qpipe/internal/workload/wisconsin"
)

func tpchLoad(mgr *sm.Manager, sf float64, seed int64, withClustered bool) (*tpch.DB, error) {
	return tpch.Load(mgr, sf, seed, withClustered)
}

func tpchAttach(mgr *sm.Manager, withClustered bool) error {
	return tpch.Attach(mgr, withClustered)
}

func wisconsinLoad(mgr *sm.Manager, bigRows int, seed int64) error {
	_, err := wisconsin.Load(mgr, bigRows, 0, seed)
	return err
}

func wisconsinAttach(mgr *sm.Manager) error {
	for _, name := range []string{"BIG1", "BIG2", "SMALL"} {
		if _, err := mgr.AttachTable(name, wisconsin.Schema()); err != nil {
			return err
		}
	}
	return nil
}

// DefaultFractions are the interarrival sweep points, as fractions of the
// standalone response time (the paper sweeps 0..140 s for queries in the
// 150-250 s range — i.e. roughly 0..1 of a query lifetime).
var DefaultFractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.2}

// warmup executes one query on the system with the latency model off, then
// cold-starts the pool. This charges one-time costs (index leaf-map walks,
// code paths) outside the measured runs, the way any benchmark harness
// separates warmup from measurement.
func warmup(env *Env, sys System, p plan.Node) error {
	env.SetMeasuring(false)
	defer env.SetMeasuring(true)
	if err := sys.Exec(context.Background(), p); err != nil {
		return err
	}
	return sys.Manager().Pool.Invalidate()
}

// sweepInterarrival runs `plans` on a system for each interarrival
// fraction, reporting fn's metric per point.
func sweepInterarrival(env *Env, sys System, standalone time.Duration, fracs []float64,
	mkPlans func() []plan.Node, metric func(StaggeredResult) float64) (Series, error) {
	s := Series{Label: sys.Name()}
	if err := warmup(env, sys, mkPlans()[0]); err != nil {
		return s, err
	}
	for _, f := range fracs {
		if err := sys.Manager().Pool.Invalidate(); err != nil {
			return s, err
		}
		res := RunStaggered(env, sys, mkPlans(), time.Duration(f*float64(standalone)))
		if res.Err != nil {
			return s, res.Err
		}
		s.Points = append(s.Points, Point{X: f, Y: metric(res)})
	}
	return s, nil
}

// Fig1aTimeBreakdown reproduces Figure 1a: per-table share of I/O for five
// representative TPC-H queries (Q8, Q12, Q13, Q14, Q19), measured on the
// conventional engine. Y values are the fraction of blocks read from each
// of LINEITEM, ORDERS, PART, and everything else.
func Fig1aTimeBreakdown(env *Env) (Figure, error) {
	sys, err := env.NewVolcano()
	if err != nil {
		return Figure{}, err
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	fig := Figure{
		Name:   "Figure 1a",
		Title:  "I/O breakdown per TPC-H query (fraction of blocks read per table)",
		XLabel: "query",
		YLabel: "fraction of blocks",
	}
	tables := []string{"LINEITEM", "ORDERS", "PART"}
	series := make([]Series, len(tables)+1)
	for i, t := range tables {
		series[i].Label = t
	}
	series[len(tables)].Label = "Other"
	params := tpch.DefaultParams()
	for _, qn := range []int{8, 12, 13, 14, 19} {
		if err := sys.Manager().Pool.Invalidate(); err != nil {
			return fig, err
		}
		env.Disk.ResetStats()
		if err := sys.Exec(context.Background(), tpch.Query(qn, params)); err != nil {
			return fig, err
		}
		st := env.Disk.Stats()
		total := float64(st.Reads)
		if total == 0 {
			total = 1
		}
		accounted := int64(0)
		for i, t := range tables {
			reads := st.ByFile["tbl:"+t]
			accounted += reads
			series[i].Points = append(series[i].Points, Point{X: float64(qn), Y: float64(reads) / total})
		}
		series[len(tables)].Points = append(series[len(tables)].Points,
			Point{X: float64(qn), Y: float64(st.Reads-accounted) / total})
	}
	fig.Series = series
	return fig, nil
}

// Fig8CircularScan reproduces Figure 8: total disk blocks read for 2, 4
// and 8 concurrent clients running TPC-H Q6, sweeping query interarrival
// time, Baseline vs QPipe w/OSP. Returns one Figure per client count.
func Fig8CircularScan(env *Env, clients []int, fracs []float64) ([]Figure, error) {
	if len(clients) == 0 {
		clients = []int{2, 4, 8}
	}
	if len(fracs) == 0 {
		fracs = DefaultFractions
	}
	baseline, err := env.NewBaseline()
	if err != nil {
		return nil, err
	}
	osp, err := env.NewQPipe()
	if err != nil {
		return nil, err
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	standalone, err := StandaloneResponse(env, baseline, func() plan.Node {
		return tpch.Q6(tpch.DefaultParams())
	})
	if err != nil {
		return nil, err
	}

	var figs []Figure
	for _, n := range clients {
		// Each client gets qgen-varied Q6 parameters (as in the paper's
		// setup, where clients do not run byte-identical queries), so
		// sharing happens at the circular-scan level, not by whole-query
		// deduplication.
		mkPlans := func() []plan.Node {
			rng := rand.New(rand.NewSource(env.Scale.Seed + 1000))
			ps := make([]plan.Node, n)
			for i := range ps {
				ps[i] = tpch.Q6(tpch.RandomParams(rng))
			}
			return ps
		}
		metric := func(r StaggeredResult) float64 { return float64(r.BlocksRead) }
		fig := Figure{
			Name:   fmt.Sprintf("Figure 8 (%d clients)", n),
			Title:  fmt.Sprintf("Disk blocks read, %d clients running TPC-H Q6", n),
			XLabel: "interarrival/R",
			YLabel: "blocks read",
		}
		for _, sys := range []System{baseline, osp} {
			s, err := sweepInterarrival(env, sys, standalone, fracs, mkPlans, metric)
			if err != nil {
				return figs, err
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig9OrderedScans reproduces Figure 9: two TPC-H Q4 instances as
// merge-joins over ordered clustered index scans, sweeping interarrival
// time; total response time, Baseline vs QPipe w/OSP.
func Fig9OrderedScans(env *Env, fracs []float64) (Figure, error) {
	return twoQuerySweep(env, "Figure 9",
		"Total response time, 2x TPC-H Q4 (merge-join over ordered clustered index scans)",
		fracs, func() plan.Node { return tpch.Q4MergeJoin(tpch.DefaultParams()) })
}

// Fig10SortMerge reproduces Figure 10: two Wisconsin 3-way sort-merge join
// queries (same BIG1/BIG2 predicates, different SMALL predicates),
// sweeping interarrival time; total response time.
func Fig10SortMerge(env *Env, fracs []float64) (Figure, error) {
	seq := 0
	return twoQuerySweep(env, "Figure 10",
		"Total response time, 2x Wisconsin 3-way sort-merge join",
		fracs, func() plan.Node {
			db := &wisconsin.DB{BigN: env.Scale.BigRows}
			seq++
			// Same BIG predicates across queries; SMALL predicate differs.
			return db.ThreeWayJoinQuery(60, int64(40+seq%2*20))
		})
}

// Fig11HashJoin reproduces Figure 11: two TPC-H Q4 instances as hybrid
// hash joins, sweeping interarrival time; total response time.
func Fig11HashJoin(env *Env, fracs []float64) (Figure, error) {
	return twoQuerySweep(env, "Figure 11",
		"Total response time, 2x TPC-H Q4 (hybrid hash join)",
		fracs, func() plan.Node { return tpch.Q4HashJoin(tpch.DefaultParams()) })
}

// twoQuerySweep runs the common two-identical-queries interarrival sweep
// of Figures 9-11 on Baseline and QPipe w/OSP.
func twoQuerySweep(env *Env, name, title string, fracs []float64, mk func() plan.Node) (Figure, error) {
	if len(fracs) == 0 {
		fracs = DefaultFractions
	}
	baseline, err := env.NewBaseline()
	if err != nil {
		return Figure{}, err
	}
	osp, err := env.NewQPipe()
	if err != nil {
		return Figure{}, err
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	if err := warmup(env, baseline, mk()); err != nil {
		return Figure{}, err
	}
	standalone, err := StandaloneResponse(env, baseline, mk)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{Name: name, Title: title, XLabel: "interarrival/R", YLabel: "total response (ms)"}
	mkPlans := func() []plan.Node { return []plan.Node{mk(), mk()} }
	metric := func(r StaggeredResult) float64 { return float64(r.Total.Milliseconds()) }
	for _, sys := range []System{baseline, osp} {
		s, err := sweepInterarrival(env, sys, standalone, fracs, mkPlans, metric)
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig12Throughput reproduces Figure 12 (and Figure 1b): TPC-H mix
// throughput for 1..maxClients concurrent clients with zero think time,
// for DBMS X, Baseline and QPipe w/OSP.
func Fig12Throughput(env *Env, clientCounts []int, queriesPerClient int) (Figure, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 6, 8, 10, 12}
	}
	if queriesPerClient <= 0 {
		queriesPerClient = 2
	}
	x, err := env.NewVolcano()
	if err != nil {
		return Figure{}, err
	}
	baseline, err := env.NewBaseline()
	if err != nil {
		return Figure{}, err
	}
	osp, err := env.NewQPipe()
	if err != nil {
		return Figure{}, err
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	fig := Figure{
		Name:   "Figure 12",
		Title:  "TPC-H mix throughput vs concurrent clients (zero think time)",
		XLabel: "clients",
		YLabel: "queries/hour",
	}
	mk := func(rng *rand.Rand) plan.Node {
		_, p := tpch.RandomMixQuery(rng)
		return p
	}
	for _, sys := range []System{x, baseline, osp} {
		s := Series{Label: sys.Name()}
		if err := warmup(env, sys, tpch.Q6(tpch.DefaultParams())); err != nil {
			return fig, err
		}
		for _, n := range clientCounts {
			if err := sys.Manager().Pool.Invalidate(); err != nil {
				return fig, err
			}
			res := RunClosedLoop(env, sys, n, queriesPerClient, 0, mk)
			if res.Err != nil {
				return fig, res.Err
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: res.Throughput})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig13ThinkTime reproduces Figure 13: average response time for the
// TPC-H mix with 10 concurrent clients, sweeping per-client think time
// (expressed as fractions of the average query response), Baseline vs
// QPipe w/OSP.
func Fig13ThinkTime(env *Env, thinkFracs []float64, clients, queriesPerClient int) (Figure, error) {
	if len(thinkFracs) == 0 {
		thinkFracs = []float64{0, 0.25, 0.5, 1, 2, 4}
	}
	if clients <= 0 {
		clients = 10
	}
	if queriesPerClient <= 0 {
		queriesPerClient = 2
	}
	baseline, err := env.NewBaseline()
	if err != nil {
		return Figure{}, err
	}
	osp, err := env.NewQPipe()
	if err != nil {
		return Figure{}, err
	}
	env.SetMeasuring(true)
	defer env.SetMeasuring(false)
	params := tpch.DefaultParams()
	standalone, err := StandaloneResponse(env, baseline, func() plan.Node { return tpch.Q6(params) })
	if err != nil {
		return Figure{}, err
	}
	mk := func(rng *rand.Rand) plan.Node {
		_, p := tpch.RandomMixQuery(rng)
		return p
	}
	fig := Figure{
		Name:   "Figure 13",
		Title:  fmt.Sprintf("Average response time, %d clients, varying think time", clients),
		XLabel: "think/R",
		YLabel: "avg response (ms)",
	}
	for _, sys := range []System{baseline, osp} {
		s := Series{Label: sys.Name()}
		if err := warmup(env, sys, tpch.Q6(params)); err != nil {
			return fig, err
		}
		for _, f := range thinkFracs {
			if err := sys.Manager().Pool.Invalidate(); err != nil {
				return fig, err
			}
			res := RunClosedLoop(env, sys, clients, queriesPerClient,
				time.Duration(f*float64(standalone)), mk)
			if res.Err != nil {
				return fig, res.Err
			}
			s.Points = append(s.Points, Point{X: f, Y: float64(res.AvgResponse.Milliseconds())})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
