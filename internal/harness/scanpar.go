// Scan-parallelism experiment: the partitioned parallel scan sweep. Not a
// paper figure — it measures this repo's intra-operator parallelism
// extension (ScanParallelism) on a dedicated scan-heavy table, solo and with
// OSP sharing engaged, the workload shape of repeated-full-pass analytics
// such as association-rule mining.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"qpipe"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// ScanTable is the table name loaded by NewScanEnv.
const ScanTable = "big"

// ScanSchema is the scan-sweep table's schema: a key, a low-cardinality
// group, a measure and a payload string that pads rows so the table spans
// enough pages to be I/O-bound.
func ScanSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("k", tuple.KindInt),
		tuple.Col("g", tuple.KindInt),
		tuple.Col("v", tuple.KindFloat),
		tuple.Col("pad", tuple.KindString),
	)
}

func scanLoad(mgr *sm.Manager, rows int, seed int64) error {
	if _, err := mgr.CreateTable(ScanTable, ScanSchema()); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	pad := "0123456789abcdef0123456789abcdef"
	batch := make([]tuple.Tuple, 0, 4096)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := mgr.Load(ScanTable, batch)
		batch = batch[:0]
		return err
	}
	for i := 0; i < rows; i++ {
		batch = append(batch, tuple.Tuple{
			tuple.I64(int64(i)),
			tuple.I64(int64(rng.Intn(97))),
			tuple.F64(rng.Float64() * 1000),
			tuple.Str(pad),
		})
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// NewScanEnv loads a single heap table of rows rows (100k+ makes a full
// scan span several hundred pages) for the scan-parallelism sweep.
func NewScanEnv(sc Scale, rows int) (*Env, error) {
	mgr := sm.New(sm.Config{Disk: disk.Config{Spindles: sc.Spindles}, PoolPages: sc.PoolPages})
	if err := scanLoad(mgr, rows, sc.Seed); err != nil {
		return nil, err
	}
	env := &Env{Scale: sc, Disk: mgr.Disk, loadMgr: mgr,
		attach: func(m *sm.Manager) error {
			_, err := m.AttachTable(ScanTable, ScanSchema())
			return err
		}}
	return env, nil
}

// ScanCountPlan builds the sweep's probe query: an unordered full scan of
// ScanTable under a count aggregate, optionally filtered (different filters
// across clients force page-level circular sharing rather than
// signature-exact dedupe).
func ScanCountPlan(schema *tuple.Schema, filter expr.Pred) plan.Node {
	return plan.NewAggregate(
		plan.NewTableScan(ScanTable, schema, filter, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}})
}

// ScanSharePlans builds the multi-client sharing workload: `clients` full
// scans of ScanTable with distinct predicates, so OSP shares the page
// stream (circular attach) rather than deduping by signature. Used by both
// the figure sweep and BenchmarkScanParallelism so they measure the same
// workload.
func ScanSharePlans(schema *tuple.Schema, clients int) []plan.Node {
	plans := make([]plan.Node, clients)
	for i := range plans {
		plans[i] = ScanCountPlan(schema, expr.GE(expr.Col(0), expr.CInt(int64(i))))
	}
	return plans
}

// ScanParallelism sweeps the partition fan-out: for each worker count it
// measures a standalone cold full scan and the per-query response of
// `clients` staggered scans with distinct predicates (OSP merges them onto
// one partitioned scan group). Returns the figure plus the total OSP shares
// observed in the multi-client runs — >0 means sharing engaged alongside
// partitioning.
func ScanParallelism(env *Env, workers []int, clients int) (Figure, int64, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	if clients <= 0 {
		clients = 3
	}
	fig := Figure{
		Name:   "ScanPar",
		Title:  "partitioned parallel scan sweep",
		XLabel: "scan workers",
		YLabel: "response ms",
	}
	solo := Series{Label: "1 client"}
	shared := Series{Label: fmt.Sprintf("%d clients w/OSP", clients)}
	var totalShares int64
	for _, w := range workers {
		cfg := qpipe.DefaultConfig()
		cfg.ScanParallelism = w
		sys, err := env.NewQPipeWith(fmt.Sprintf("QPipe scan-par=%d", w), cfg)
		if err != nil {
			return fig, totalShares, err
		}
		schema := sys.Manager().MustTable(ScanTable).Schema
		env.SetMeasuring(true)
		d, err := StandaloneResponse(env, sys, func() plan.Node { return ScanCountPlan(schema, nil) })
		if err != nil {
			env.SetMeasuring(false)
			return fig, totalShares, err
		}
		solo.Points = append(solo.Points, Point{X: float64(w), Y: ms(d)})

		plans := ScanSharePlans(schema, clients)
		if err := sys.Manager().Pool.Invalidate(); err != nil {
			env.SetMeasuring(false)
			return fig, totalShares, err
		}
		res := RunStaggered(env, sys, plans, d/10)
		env.SetMeasuring(false)
		if res.Err != nil {
			return fig, totalShares, res.Err
		}
		var sum time.Duration
		for _, pq := range res.PerQuery {
			sum += pq
		}
		shared.Points = append(shared.Points, Point{X: float64(w), Y: ms(sum / time.Duration(clients))})
		totalShares += res.Shares
	}
	fig.Series = []Series{solo, shared}
	return fig, totalShares, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
