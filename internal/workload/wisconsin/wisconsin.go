// Package wisconsin generates the Wisconsin Benchmark dataset (DeWitt [11])
// used by the paper's §5.2.1 sort-merge experiment: two large tables (BIG1,
// BIG2) and one small table (SMALL, 10% of the big ones), each with the
// standard derived columns (unique1 is a random permutation, unique2 is
// sequential, the modulo columns derive from unique1) plus filler strings
// that pad tuples toward the benchmark's 200-byte rows.
package wisconsin

import (
	"fmt"
	"math/rand"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// Schema returns the Wisconsin table schema.
func Schema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Col("unique1", tuple.KindInt),
		tuple.Col("unique2", tuple.KindInt),
		tuple.Col("two", tuple.KindInt),
		tuple.Col("four", tuple.KindInt),
		tuple.Col("ten", tuple.KindInt),
		tuple.Col("twenty", tuple.KindInt),
		tuple.Col("hundred", tuple.KindInt),
		tuple.Col("thousand", tuple.KindInt),
		tuple.Col("stringu1", tuple.KindString),
		tuple.Col("string4", tuple.KindString),
	)
}

// Column indexes into Schema (exported for plan building).
const (
	ColUnique1 = iota
	ColUnique2
	ColTwo
	ColFour
	ColTen
	ColTwenty
	ColHundred
	ColThousand
	ColStringU1
	ColString4
)

var string4Vals = []string{"AAAA", "HHHH", "OOOO", "VVVV"}

// rows generates n Wisconsin rows deterministically from seed.
func rows(n int, seed int64, pad int) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	filler := make([]byte, pad)
	for i := range filler {
		filler[i] = 'x'
	}
	out := make([]tuple.Tuple, n)
	for i := 0; i < n; i++ {
		u1 := int64(perm[i])
		out[i] = tuple.Tuple{
			tuple.I64(u1),
			tuple.I64(int64(i)),
			tuple.I64(u1 % 2),
			tuple.I64(u1 % 4),
			tuple.I64(u1 % 10),
			tuple.I64(u1 % 20),
			tuple.I64(u1 % 100),
			tuple.I64(u1 % 1000),
			tuple.Str(fmt.Sprintf("u1-%08d%s", u1, filler)),
			tuple.Str(string4Vals[i%4]),
		}
	}
	return out
}

// DB is a loaded Wisconsin database.
type DB struct {
	Mgr    *sm.Manager
	BigN   int // rows in BIG1/BIG2
	SmallN int
}

// Load generates and loads BIG1, BIG2 and SMALL into the storage manager.
// bigN rows for the big tables; SMALL gets bigN/10. pad sizes the filler
// string (0 gives ~60-byte tuples; 140 approximates the benchmark's
// 200-byte rows).
func Load(mgr *sm.Manager, bigN int, pad int, seed int64) (*DB, error) {
	smallN := bigN / 10
	if smallN < 1 {
		smallN = 1
	}
	for i, spec := range []struct {
		name string
		n    int
		seed int64
	}{
		{"BIG1", bigN, seed},
		{"BIG2", bigN, seed + 1},
		{"SMALL", smallN, seed + 2},
	} {
		if _, err := mgr.CreateTable(spec.name, Schema()); err != nil {
			return nil, err
		}
		if err := mgr.Load(spec.name, rows(spec.n, spec.seed, pad)); err != nil {
			return nil, err
		}
		_ = i
	}
	return &DB{Mgr: mgr, BigN: bigN, SmallN: smallN}, nil
}

// ThreeWayJoinQuery builds the Figure 10 query: a 3-way sort-merge join
//
//	SORT( MJ( MJ( SORT(σ BIG1), SORT(σ BIG2) ), SORT(σ SMALL) ) )
//
// joining on unique1. The BIG1/BIG2 predicates are fixed (both queries in
// the experiment share them); the SMALL predicate differs per query via
// smallHundredLT (a selection unique to each query), so only the BIG
// subtree overlaps — exactly the paper's setup ("the two queries have the
// same predicates for scanning BIG1 and BIG2, but different ones for
// SMALL").
func (db *DB) ThreeWayJoinQuery(bigHundredLT, smallHundredLT int64) plan.Node {
	s := Schema()
	pred := func(lt int64) expr.Pred {
		return expr.LT(expr.Col(ColHundred), expr.CInt(lt))
	}
	proj := []int{ColUnique1, ColHundred}
	scan1 := plan.NewTableScan("BIG1", s, pred(bigHundredLT), proj, false)
	scan2 := plan.NewTableScan("BIG2", s, pred(bigHundredLT), proj, false)
	scanS := plan.NewTableScan("SMALL", s, pred(smallHundredLT), proj, false)
	sort1 := plan.NewSort(scan1, []int{0}, false)
	sort2 := plan.NewSort(scan2, []int{0}, false)
	sortS := plan.NewSort(scanS, []int{0}, false)
	mj12 := plan.NewMergeJoin(sort1, sort2, 0, 0, false)
	// mj12 output: (u1, hundred, u1, hundred); join key still column 0.
	mj3 := plan.NewMergeJoin(mj12, sortS, 0, 0, false)
	return plan.NewSort(mj3, []int{1}, false)
}
