package wisconsin

import (
	"testing"

	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func TestLoadShapes(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 32})
	db, err := Load(mgr, 1000, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if db.BigN != 1000 || db.SmallN != 100 {
		t.Fatalf("sizes: %+v", db)
	}
	for name, want := range map[string]int64{"BIG1": 1000, "BIG2": 1000, "SMALL": 100} {
		n, err := mgr.MustTable(name).Heap.Count()
		if err != nil || n != want {
			t.Fatalf("%s: %d %v", name, n, err)
		}
	}
}

func TestUniqueColumnsAndDerivations(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 32})
	if _, err := Load(mgr, 500, 0, 5); err != nil {
		t.Fatal(err)
	}
	seen1 := make(map[int64]bool)
	var seq int64
	err := mgr.MustTable("BIG1").Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
		u1, u2 := row[ColUnique1].I, row[ColUnique2].I
		if seen1[u1] {
			t.Fatalf("unique1 %d duplicated", u1)
		}
		seen1[u1] = true
		if u2 != seq {
			t.Fatalf("unique2 not sequential: %d at %d", u2, seq)
		}
		seq++
		// Derived columns follow unique1.
		if row[ColTwo].I != u1%2 || row[ColTen].I != u1%10 ||
			row[ColHundred].I != u1%100 || row[ColThousand].I != u1%1000 {
			t.Fatalf("derived columns wrong for u1=%d: %v", u1, row)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen1) != 500 {
		t.Fatalf("unique1 cardinality: %d", len(seen1))
	}
}

func TestBig1Big2Differ(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 32})
	if _, err := Load(mgr, 200, 0, 5); err != nil {
		t.Fatal(err)
	}
	// Different seeds per table: the unique1 permutations should differ.
	first := func(name string) []int64 {
		var out []int64
		mgr.MustTable(name).Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
			out = append(out, row[ColUnique1].I)
			return len(out) < 50
		})
		return out
	}
	a, b := first("BIG1"), first("BIG2")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("BIG1 and BIG2 have identical permutations")
	}
}

func TestPadGrowsTuples(t *testing.T) {
	small := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 32})
	big := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 32})
	if _, err := Load(small, 300, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(big, 300, 140, 5); err != nil {
		t.Fatal(err)
	}
	if big.MustTable("BIG1").Heap.NumPages() <= small.MustTable("BIG1").Heap.NumPages() {
		t.Fatal("padding should increase page count")
	}
}

func TestThreeWayJoinQueryShape(t *testing.T) {
	db := &DB{BigN: 100}
	q1 := db.ThreeWayJoinQuery(60, 40)
	q2 := db.ThreeWayJoinQuery(60, 60)
	if q1.Signature() == q2.Signature() {
		t.Fatal("different SMALL predicates must differ in signature")
	}
	// The shared BIG subtree must be signature-identical across the two
	// queries — that's the Figure 10 sharing premise.
	mj1 := q1.Children()[0].Children()[0] // sort -> mj3 -> mj12
	mj2 := q2.Children()[0].Children()[0]
	if mj1.Signature() != mj2.Signature() {
		t.Fatalf("BIG1⋈BIG2 subtree signatures differ:\n%s\n%s", mj1.Signature(), mj2.Signature())
	}
}

func TestLoadDuplicateFails(t *testing.T) {
	mgr := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 32})
	if _, err := Load(mgr, 100, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(mgr, 100, 0, 5); err == nil {
		t.Fatal("second load should fail on existing tables")
	}
}
