// The Wisconsin Benchmark's standard query categories (DeWitt [11]) as plan
// builders. The benchmark defines 32 queries in families; these builders
// cover the families a relational engine's evaluation exercises —
// selections at 1% and 10% selectivity (with and without an index), the
// three join patterns (JoinAselB, JoinABprime, JoinCselAselB), projections
// with and without duplicates, and the aggregate trio (MIN, MIN-grouped,
// SUM-grouped). Figure 10's 3-way sort-merge query lives in wisconsin.go.
package wisconsin

import (
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// sel returns a unique1 range predicate selecting n of total rows starting
// at lo (the benchmark's selections are ranges over unique1/unique2).
func sel(col int, lo, n int64) expr.Pred {
	return expr.AndOf(
		expr.GE(expr.Col(col), expr.CInt(lo)),
		expr.LT(expr.Col(col), expr.CInt(lo+n)),
	)
}

// Sel1Percent is query family 1/3: a 1% range selection on unique2 (no
// index; sequential scan).
func (db *DB) Sel1Percent(table string, lo int64) plan.Node {
	n := int64(db.rowsOf(table)) / 100
	if n < 1 {
		n = 1
	}
	return plan.NewTableScan(table, Schema(), sel(ColUnique2, lo, n), nil, false)
}

// Sel10Percent is query family 2/4: a 10% range selection.
func (db *DB) Sel10Percent(table string, lo int64) plan.Node {
	n := int64(db.rowsOf(table)) / 10
	if n < 1 {
		n = 1
	}
	return plan.NewTableScan(table, Schema(), sel(ColUnique2, lo, n), nil, false)
}

// SelIndexed1Percent is the clustered-index variant of the 1% selection
// (query family 3): requires BuildClustered(table, "unique2").
func (db *DB) SelIndexed1Percent(table string, lo int64) plan.Node {
	n := int64(db.rowsOf(table)) / 100
	if n < 1 {
		n = 1
	}
	return plan.NewIndexScan(table, Schema(), "unique2",
		tuple.I64(lo), tuple.I64(lo+n-1), true, true, nil, nil)
}

// JoinAselB is the benchmark's two-way join: a 10% selection of one BIG
// table joined with the full other BIG table on unique1 (hash join, as the
// paper's mix uses).
func (db *DB) JoinAselB() plan.Node {
	a := plan.NewTableScan("BIG1", Schema(), sel(ColUnique2, 0, int64(db.BigN/10)), nil, false)
	b := plan.NewTableScan("BIG2", Schema(), nil, nil, false)
	return plan.NewHashJoin(a, b, ColUnique1, ColUnique1)
}

// JoinABprime joins BIG1 with the SMALL table (a 10%-sized "Bprime"
// stand-in) on unique1.
func (db *DB) JoinABprime() plan.Node {
	a := plan.NewTableScan("BIG1", Schema(), nil, nil, false)
	b := plan.NewTableScan("SMALL", Schema(), nil, nil, false)
	return plan.NewHashJoin(b, a, ColUnique1, ColUnique1)
}

// JoinCselAselB is the three-way pattern: selections of BIG1 and BIG2
// joined, then joined with SMALL (all on unique1, hash joins).
func (db *DB) JoinCselAselB() plan.Node {
	selN := int64(db.BigN / 10)
	a := plan.NewTableScan("BIG1", Schema(), sel(ColUnique2, 0, selN), nil, false)
	b := plan.NewTableScan("BIG2", Schema(), sel(ColUnique2, 0, selN), nil, false)
	ab := plan.NewHashJoin(a, b, ColUnique1, ColUnique1)
	c := plan.NewTableScan("SMALL", Schema(), nil, nil, false)
	// SMALL joins on the BIG1 side's unique1 (column 0 of the join output).
	return plan.NewHashJoin(c, ab, ColUnique1, ColUnique1)
}

// ProjectionDistinct is query family 21-22: project onto the two/ten
// columns and deduplicate — expressed as a group-by over the projection
// (the classic way engines without a distinct operator run it).
func (db *DB) ProjectionDistinct(table string) plan.Node {
	scan := plan.NewTableScan(table, Schema(), nil, []int{ColTwo, ColTen}, false)
	return plan.NewGroupBy(scan, []int{0, 1}, []expr.AggSpec{{Kind: expr.AggCount, Name: "n"}})
}

// AggMin is query 23: MIN over unique1 (a scalar aggregate — full-overlap
// WoP under OSP).
func (db *DB) AggMin(table string) plan.Node {
	scan := plan.NewTableScan(table, Schema(), nil, nil, false)
	return plan.NewAggregate(scan, []expr.AggSpec{
		{Kind: expr.AggMin, Arg: expr.Col(ColUnique1), Name: "min_u1"},
	})
}

// AggMinGrouped is query 24: MIN(unique1) grouped by hundred (100 groups).
func (db *DB) AggMinGrouped(table string) plan.Node {
	scan := plan.NewTableScan(table, Schema(), nil, nil, false)
	return plan.NewGroupBy(scan, []int{ColHundred}, []expr.AggSpec{
		{Kind: expr.AggMin, Arg: expr.Col(ColUnique1), Name: "min_u1"},
	})
}

// AggSumGrouped is query 25: SUM(unique1) grouped by hundred.
func (db *DB) AggSumGrouped(table string) plan.Node {
	scan := plan.NewTableScan(table, Schema(), nil, nil, false)
	return plan.NewGroupBy(scan, []int{ColHundred}, []expr.AggSpec{
		{Kind: expr.AggSum, Arg: expr.Col(ColUnique1), Name: "sum_u1"},
	})
}

func (db *DB) rowsOf(table string) int {
	if table == "SMALL" {
		return db.SmallN
	}
	return db.BigN
}
