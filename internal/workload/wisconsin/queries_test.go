package wisconsin

import (
	"context"
	"io"
	"testing"

	"qpipe/internal/core"
	"qpipe/internal/ops"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func loadedDB(t *testing.T, bigN int) (*DB, *core.Runtime) {
	t.Helper()
	mgr := sm.New(sm.Config{Disk: disk.Config{BlockSize: 2048}, PoolPages: 64})
	db, err := Load(mgr, bigN, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BuildClustered("BIG1", "unique2"); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(mgr, core.DefaultConfig(), ops.All())
	t.Cleanup(rt.Close)
	return db, rt
}

func runQ(t *testing.T, rt *core.Runtime, p plan.Node) []tuple.Tuple {
	t.Helper()
	q, err := rt.Submit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var rows []tuple.Tuple
	for {
		b, err := q.Result.Get()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, b...)
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestSelectionSelectivities(t *testing.T) {
	db, rt := loadedDB(t, 1000)
	if got := len(runQ(t, rt, db.Sel1Percent("BIG1", 100))); got != 10 {
		t.Fatalf("1%% selection: %d rows", got)
	}
	if got := len(runQ(t, rt, db.Sel10Percent("BIG1", 100))); got != 100 {
		t.Fatalf("10%% selection: %d rows", got)
	}
	// Indexed variant must agree with the scan variant.
	idx := runQ(t, rt, db.SelIndexed1Percent("BIG1", 100))
	if len(idx) != 10 {
		t.Fatalf("indexed 1%% selection: %d rows", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i-1][ColUnique2].I >= idx[i][ColUnique2].I {
			t.Fatal("indexed selection not in key order")
		}
	}
}

func TestJoinFamilies(t *testing.T) {
	db, rt := loadedDB(t, 500)
	// JoinAselB: 10% of BIG1 (unique2 range) joined on unique1 with all of
	// BIG2 — unique1 is a permutation, so every selected row matches
	// exactly one BIG2 row.
	if got := len(runQ(t, rt, db.JoinAselB())); got != db.BigN/10 {
		t.Fatalf("JoinAselB: %d rows, want %d", got, db.BigN/10)
	}
	// JoinABprime: SMALL's unique1 values are a permutation of 0..SmallN-1;
	// BIG1 contains each of those values exactly once.
	if got := len(runQ(t, rt, db.JoinABprime())); got != db.SmallN {
		t.Fatalf("JoinABprime: %d rows, want %d", got, db.SmallN)
	}
	// JoinCselAselB output: rows whose BIG1-side unique1 < SmallN within
	// the select ranges; just require non-empty and bounded.
	got := len(runQ(t, rt, db.JoinCselAselB()))
	if got <= 0 || got > db.BigN/10 {
		t.Fatalf("JoinCselAselB: %d rows", got)
	}
}

func TestProjectionAndAggregates(t *testing.T) {
	db, rt := loadedDB(t, 800)
	// (two, ten): two == ten % 2 by construction, so exactly 10 distinct
	// combinations survive deduplication.
	if got := len(runQ(t, rt, db.ProjectionDistinct("BIG1"))); got != 10 {
		t.Fatalf("ProjectionDistinct: %d groups, want 10", got)
	}
	minRow := runQ(t, rt, db.AggMin("BIG1"))
	if len(minRow) != 1 || minRow[0][0].AsInt() != 0 {
		t.Fatalf("AggMin: %v", minRow)
	}
	grouped := runQ(t, rt, db.AggMinGrouped("BIG1"))
	if len(grouped) != 100 {
		t.Fatalf("AggMinGrouped: %d groups, want 100", len(grouped))
	}
	// Each group's min over unique1 % 100 == h must be h itself (perm of
	// 0..799 covers every residue at least once with min == residue).
	for _, g := range grouped {
		if g[1].AsInt() != g[0].I {
			t.Fatalf("group %d: min %v", g[0].I, g[1])
		}
	}
	sums := runQ(t, rt, db.AggSumGrouped("BIG1"))
	if len(sums) != 100 {
		t.Fatalf("AggSumGrouped: %d groups", len(sums))
	}
	total := 0.0
	for _, g := range sums {
		total += g[1].F
	}
	if want := float64(800*799) / 2; total != want {
		t.Fatalf("sum of group sums %f, want %f", total, want)
	}
}
