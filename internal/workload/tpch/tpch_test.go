package tpch

import (
	"math/rand"
	"testing"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/storage/heap"
	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

func loadTiny(t *testing.T, withClustered bool) (*sm.Manager, *DB) {
	t.Helper()
	mgr := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 64})
	db, err := Load(mgr, 0.0005, 3, withClustered)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, db
}

func TestLoadCardinalities(t *testing.T) {
	mgr, db := loadTiny(t, false)
	counts := map[string]int64{}
	for _, name := range mgr.Tables() {
		n, err := mgr.MustTable(name).Heap.Count()
		if err != nil {
			t.Fatal(err)
		}
		counts[name] = n
	}
	if counts["REGION"] != 5 || counts["NATION"] != 25 {
		t.Fatalf("region/nation: %v", counts)
	}
	if counts["ORDERS"] != int64(db.Orders) {
		t.Fatalf("orders: %d vs %d", counts["ORDERS"], db.Orders)
	}
	if counts["LINEITEM"] != int64(db.Lineitems) {
		t.Fatalf("lineitem: %d vs %d", counts["LINEITEM"], db.Lineitems)
	}
	// TPC-H invariant: 1-7 lineitems per order, average ~4.
	if counts["LINEITEM"] < counts["ORDERS"] || counts["LINEITEM"] > 7*counts["ORDERS"] {
		t.Fatalf("lineitem/order ratio: %d/%d", counts["LINEITEM"], counts["ORDERS"])
	}
	if counts["PARTSUPP"] != 4*counts["PART"] {
		t.Fatalf("partsupp: %d vs 4x%d", counts["PARTSUPP"], counts["PART"])
	}
}

func TestLoadDeterministic(t *testing.T) {
	collect := func() []tuple.Tuple {
		mgr := sm.New(sm.Config{Disk: disk.Config{}, PoolPages: 32})
		if _, err := Load(mgr, 0.0005, 3, false); err != nil {
			t.Fatal(err)
		}
		var rows []tuple.Tuple
		mgr.MustTable("LINEITEM").Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
			rows = append(rows, row)
			return len(rows) < 50
		})
		return rows
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if tuple.CompareAt(a[i], b[i], []int{0, 1, 4, 10}) != 0 {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForeignKeysInRange(t *testing.T) {
	mgr, db := loadTiny(t, false)
	err := mgr.MustTable("LINEITEM").Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
		ok := row[0].I
		if ok < 1 || ok > int64(db.Orders) {
			t.Fatalf("l_orderkey out of range: %d", ok)
		}
		pk := row[1].I
		if pk < 1 || pk > int64(db.Parts) {
			t.Fatalf("l_partkey out of range: %d", pk)
		}
		// Date sanity: receipt after ship.
		if row[12].I <= row[10].I {
			t.Fatalf("receiptdate %d <= shipdate %d", row[12].I, row[10].I)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.MustTable("ORDERS").Heap.Scan(func(_ heap.RID, row tuple.Tuple) bool {
		ck := row[1].I
		if ck < 1 || ck > int64(db.Customers) {
			t.Fatalf("o_custkey out of range: %d", ck)
		}
		if row[4].I < StartDate || row[4].I > EndDate {
			t.Fatalf("o_orderdate out of range: %d", row[4].I)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusteredIndexesBuilt(t *testing.T) {
	mgr, _ := loadTiny(t, true)
	for _, tb := range []string{"ORDERS", "LINEITEM"} {
		tbl := mgr.MustTable(tb)
		if tbl.Clustered == nil {
			t.Fatalf("%s: no clustered index", tb)
		}
		hc, _ := tbl.Heap.Count()
		cc, err := tbl.Clustered.Count()
		if err != nil || cc != hc {
			t.Fatalf("%s: clustered %d vs heap %d (%v)", tb, cc, hc, err)
		}
	}
}

func TestAttachSharedDisk(t *testing.T) {
	mgr, _ := loadTiny(t, true)
	m2 := sm.NewSharedDisk(mgr.Disk, 32, nil)
	if err := Attach(m2, true); err != nil {
		t.Fatal(err)
	}
	n1, _ := mgr.MustTable("ORDERS").Heap.Count()
	n2, _ := m2.MustTable("ORDERS").Heap.Count()
	if n1 != n2 {
		t.Fatalf("attached counts differ: %d vs %d", n1, n2)
	}
	if m2.MustTable("LINEITEM").ClusteredKey != "l_orderkey" {
		t.Fatal("clustered key not attached")
	}
}

func TestAllQueriesBuild(t *testing.T) {
	p := DefaultParams()
	for _, qn := range MixQueries {
		node := Query(qn, p)
		if node == nil {
			t.Fatalf("Q%d nil", qn)
		}
		if plan.CountNodes(node) < 2 {
			t.Fatalf("Q%d suspiciously small plan", qn)
		}
		// Signatures must be stable for identical parameters (OSP relies
		// on this).
		if node.Signature() != Query(qn, p).Signature() {
			t.Fatalf("Q%d: unstable signature", qn)
		}
	}
	if Q4MergeJoin(p).Signature() == Q4HashJoin(p).Signature() {
		t.Fatal("Q4 variants must differ")
	}
}

func TestQueryPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown query number should panic")
		}
	}()
	Query(2, DefaultParams())
}

func TestRandomParamsVary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p1 := RandomParams(rng)
	p2 := RandomParams(rng)
	if p1 == p2 {
		t.Fatal("consecutive random params identical")
	}
	// Randomized instances of the same query should (usually) have
	// different signatures — that's the qgen behaviour §5.3 relies on.
	s1 := Q6(p1).Signature()
	s2 := Q6(p2).Signature()
	if s1 == s2 {
		t.Fatal("qgen produced identical Q6 signatures")
	}
}

func TestRandomMixQueryCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		qn, node := RandomMixQuery(rng)
		if node == nil {
			t.Fatal("nil plan")
		}
		seen[qn] = true
	}
	for _, qn := range MixQueries {
		if !seen[qn] {
			t.Errorf("Q%d never drawn", qn)
		}
	}
}

func TestDays(t *testing.T) {
	if Days(1970, time.January, 1) != 0 {
		t.Fatal("epoch")
	}
	if Days(1970, time.January, 2) != 1 {
		t.Fatal("epoch+1")
	}
	if EndDate-StartDate < 2500 || EndDate-StartDate > 2600 {
		t.Fatalf("population range: %d days", EndDate-StartDate)
	}
}

func TestMonthHelpers(t *testing.T) {
	if monthStart(0) != Days(1993, time.January, 1) {
		t.Fatal("monthStart(0)")
	}
	if monthStart(13) != Days(1994, time.February, 1) {
		t.Fatal("monthStart(13)")
	}
	if addMonths(11, 3) != Days(1994, time.March, 1) {
		t.Fatal("addMonths wrap")
	}
}
