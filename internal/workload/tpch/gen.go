// Package tpch provides a scaled-down, deterministic dbgen-equivalent for
// the TPC-H schema (all eight tables, preserved key relationships and
// relative cardinalities) plus the query plans the paper's evaluation uses
// (Q1, Q4 in merge-join and hash-join forms, Q6, Q8, Q12, Q13, Q14, Q19)
// and a qgen-equivalent that randomizes selection predicates per query
// instance (§5.3: "the selection predicates for base table scans were
// generated randomly using the standard qgen utility").
//
// Substitutions vs. the real dbgen (documented in DESIGN.md §2): text
// columns irrelevant to the queries are dropped or shortened, p_type is an
// integer category (0-149) with "PROMO" = type < 25, and row counts scale
// by SF from the standard SF=1 cardinalities.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"qpipe/internal/storage/sm"
	"qpipe/internal/tuple"
)

// Days converts a civil date to days since the Unix epoch (our date
// representation).
func Days(y int, m time.Month, d int) int64 {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// The TPC-H population date range.
var (
	StartDate = Days(1992, time.January, 1)
	EndDate   = Days(1998, time.December, 31)
)

// Schemas for the eight TPC-H tables (columns the evaluation queries use).
var (
	LineitemSchema = tuple.NewSchema(
		tuple.Col("l_orderkey", tuple.KindInt),
		tuple.Col("l_partkey", tuple.KindInt),
		tuple.Col("l_suppkey", tuple.KindInt),
		tuple.Col("l_linenumber", tuple.KindInt),
		tuple.Col("l_quantity", tuple.KindFloat),
		tuple.Col("l_extendedprice", tuple.KindFloat),
		tuple.Col("l_discount", tuple.KindFloat),
		tuple.Col("l_tax", tuple.KindFloat),
		tuple.Col("l_returnflag", tuple.KindString),
		tuple.Col("l_linestatus", tuple.KindString),
		tuple.Col("l_shipdate", tuple.KindDate),
		tuple.Col("l_commitdate", tuple.KindDate),
		tuple.Col("l_receiptdate", tuple.KindDate),
		tuple.Col("l_shipmode", tuple.KindString),
	)
	OrdersSchema = tuple.NewSchema(
		tuple.Col("o_orderkey", tuple.KindInt),
		tuple.Col("o_custkey", tuple.KindInt),
		tuple.Col("o_orderstatus", tuple.KindString),
		tuple.Col("o_totalprice", tuple.KindFloat),
		tuple.Col("o_orderdate", tuple.KindDate),
		tuple.Col("o_orderpriority", tuple.KindString),
		tuple.Col("o_shippriority", tuple.KindInt),
	)
	CustomerSchema = tuple.NewSchema(
		tuple.Col("c_custkey", tuple.KindInt),
		tuple.Col("c_name", tuple.KindString),
		tuple.Col("c_nationkey", tuple.KindInt),
		tuple.Col("c_mktsegment", tuple.KindString),
		tuple.Col("c_acctbal", tuple.KindFloat),
	)
	PartSchema = tuple.NewSchema(
		tuple.Col("p_partkey", tuple.KindInt),
		tuple.Col("p_brand", tuple.KindString),
		tuple.Col("p_type", tuple.KindInt),
		tuple.Col("p_size", tuple.KindInt),
		tuple.Col("p_container", tuple.KindString),
		tuple.Col("p_retailprice", tuple.KindFloat),
	)
	SupplierSchema = tuple.NewSchema(
		tuple.Col("s_suppkey", tuple.KindInt),
		tuple.Col("s_name", tuple.KindString),
		tuple.Col("s_nationkey", tuple.KindInt),
	)
	PartsuppSchema = tuple.NewSchema(
		tuple.Col("ps_partkey", tuple.KindInt),
		tuple.Col("ps_suppkey", tuple.KindInt),
		tuple.Col("ps_availqty", tuple.KindInt),
		tuple.Col("ps_supplycost", tuple.KindFloat),
	)
	NationSchema = tuple.NewSchema(
		tuple.Col("n_nationkey", tuple.KindInt),
		tuple.Col("n_name", tuple.KindString),
		tuple.Col("n_regionkey", tuple.KindInt),
	)
	RegionSchema = tuple.NewSchema(
		tuple.Col("r_regionkey", tuple.KindInt),
		tuple.Col("r_name", tuple.KindString),
	)
)

var (
	shipmodes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	containers  = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "LG CASE", "LG BOX", "LG PACK", "LG PKG"}
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	brandFmt    = "Brand#%d%d"
	// PromoTypeMax: p_type values below this are "PROMO" types (Q14).
	PromoTypeMax = int64(25)
)

// DB is a loaded TPC-H database.
type DB struct {
	Mgr *sm.Manager
	SF  float64

	Orders    int
	Lineitems int
	Customers int
	Parts     int
	Suppliers int
}

// Counts reports the scaled row counts for an SF.
func Counts(sf float64) (orders, customers, parts, suppliers int) {
	scale := func(base int, min int) int {
		n := int(float64(base) * sf)
		if n < min {
			n = min
		}
		return n
	}
	return scale(1_500_000, 50), scale(150_000, 10), scale(200_000, 20), scale(10_000, 5)
}

// Load generates the dataset at scale factor sf and bulk loads it. When
// withClustered is set, clustered B+tree indexes on o_orderkey and
// l_orderkey are built (the access paths Figure 9's merge-join plans use).
func Load(mgr *sm.Manager, sf float64, seed int64, withClustered bool) (*DB, error) {
	rng := rand.New(rand.NewSource(seed))
	nOrders, nCust, nPart, nSupp := Counts(sf)

	db := &DB{Mgr: mgr, SF: sf, Orders: nOrders, Customers: nCust, Parts: nPart, Suppliers: nSupp}

	// region, nation
	if _, err := mgr.CreateTable("REGION", RegionSchema); err != nil {
		return nil, err
	}
	var regions []tuple.Tuple
	for i, name := range regionNames {
		regions = append(regions, tuple.Tuple{tuple.I64(int64(i)), tuple.Str(name)})
	}
	if err := mgr.Load("REGION", regions); err != nil {
		return nil, err
	}
	if _, err := mgr.CreateTable("NATION", NationSchema); err != nil {
		return nil, err
	}
	var nations []tuple.Tuple
	for i, name := range nationNames {
		nations = append(nations, tuple.Tuple{
			tuple.I64(int64(i)), tuple.Str(name), tuple.I64(int64(i % 5)),
		})
	}
	if err := mgr.Load("NATION", nations); err != nil {
		return nil, err
	}

	// supplier
	if _, err := mgr.CreateTable("SUPPLIER", SupplierSchema); err != nil {
		return nil, err
	}
	supp := make([]tuple.Tuple, nSupp)
	for i := range supp {
		supp[i] = tuple.Tuple{
			tuple.I64(int64(i + 1)),
			tuple.Str(fmt.Sprintf("Supplier#%09d", i+1)),
			tuple.I64(int64(rng.Intn(25))),
		}
	}
	if err := mgr.Load("SUPPLIER", supp); err != nil {
		return nil, err
	}

	// customer
	if _, err := mgr.CreateTable("CUSTOMER", CustomerSchema); err != nil {
		return nil, err
	}
	cust := make([]tuple.Tuple, nCust)
	for i := range cust {
		cust[i] = tuple.Tuple{
			tuple.I64(int64(i + 1)),
			tuple.Str(fmt.Sprintf("Customer#%09d", i+1)),
			tuple.I64(int64(rng.Intn(25))),
			tuple.Str(segments[rng.Intn(len(segments))]),
			tuple.F64(float64(rng.Intn(999999)) / 100),
		}
	}
	if err := mgr.Load("CUSTOMER", cust); err != nil {
		return nil, err
	}

	// part
	if _, err := mgr.CreateTable("PART", PartSchema); err != nil {
		return nil, err
	}
	parts := make([]tuple.Tuple, nPart)
	for i := range parts {
		parts[i] = tuple.Tuple{
			tuple.I64(int64(i + 1)),
			tuple.Str(fmt.Sprintf(brandFmt, 1+rng.Intn(5), 1+rng.Intn(5))),
			tuple.I64(int64(rng.Intn(150))),
			tuple.I64(int64(1 + rng.Intn(50))),
			tuple.Str(containers[rng.Intn(len(containers))]),
			tuple.F64(900 + float64(i%201)),
		}
	}
	if err := mgr.Load("PART", parts); err != nil {
		return nil, err
	}

	// partsupp: 4 suppliers per part (scaled).
	if _, err := mgr.CreateTable("PARTSUPP", PartsuppSchema); err != nil {
		return nil, err
	}
	var ps []tuple.Tuple
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			ps = append(ps, tuple.Tuple{
				tuple.I64(int64(i + 1)),
				tuple.I64(int64(1 + (i*4+j)%nSupp)),
				tuple.I64(int64(1 + rng.Intn(9999))),
				tuple.F64(float64(rng.Intn(100000)) / 100),
			})
		}
	}
	if err := mgr.Load("PARTSUPP", ps); err != nil {
		return nil, err
	}

	// orders + lineitem
	if _, err := mgr.CreateTable("ORDERS", OrdersSchema); err != nil {
		return nil, err
	}
	if _, err := mgr.CreateTable("LINEITEM", LineitemSchema); err != nil {
		return nil, err
	}
	dateRange := int(EndDate - StartDate - 151)
	orders := make([]tuple.Tuple, 0, nOrders)
	var lineitems []tuple.Tuple
	for i := 0; i < nOrders; i++ {
		okey := int64(i + 1)
		odate := StartDate + int64(rng.Intn(dateRange))
		nl := 1 + rng.Intn(7)
		total := 0.0
		for ln := 0; ln < nl; ln++ {
			pkey := int64(1 + rng.Intn(nPart))
			qty := float64(1 + rng.Intn(50))
			price := qty * (900 + float64(int(pkey)%201))
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := odate + int64(1+rng.Intn(121))
			commit := odate + int64(30+rng.Intn(61))
			receipt := ship + int64(1+rng.Intn(30))
			rf := "N"
			if receipt <= Days(1995, time.June, 17) {
				if rng.Intn(2) == 0 {
					rf = "A"
				} else {
					rf = "R"
				}
			}
			ls := "O"
			if ship <= Days(1995, time.June, 17) {
				ls = "F"
			}
			total += price * (1 - disc)
			lineitems = append(lineitems, tuple.Tuple{
				tuple.I64(okey),
				tuple.I64(pkey),
				tuple.I64(int64(1 + (int(pkey)*7+ln)%nSupp)),
				tuple.I64(int64(ln + 1)),
				tuple.F64(qty),
				tuple.F64(price),
				tuple.F64(disc),
				tuple.F64(tax),
				tuple.Str(rf),
				tuple.Str(ls),
				tuple.Date(ship),
				tuple.Date(commit),
				tuple.Date(receipt),
				tuple.Str(shipmodes[rng.Intn(len(shipmodes))]),
			})
		}
		status := "O"
		if odate+121 <= Days(1995, time.June, 17) {
			status = "F"
		}
		orders = append(orders, tuple.Tuple{
			tuple.I64(okey),
			tuple.I64(int64(1 + rng.Intn(nCust))),
			tuple.Str(status),
			tuple.F64(total),
			tuple.Date(odate),
			tuple.Str(priorities[rng.Intn(len(priorities))]),
			tuple.I64(0),
		})
	}
	if err := mgr.Load("ORDERS", orders); err != nil {
		return nil, err
	}
	if err := mgr.Load("LINEITEM", lineitems); err != nil {
		return nil, err
	}
	db.Lineitems = len(lineitems)

	if withClustered {
		if err := mgr.BuildClustered("ORDERS", "o_orderkey"); err != nil {
			return nil, err
		}
		if err := mgr.BuildClustered("LINEITEM", "l_orderkey"); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Attach opens the TPC-H tables on a storage manager sharing the loaded
// disk (separate buffer pool — how the harness gives each system its own
// pool over identical data).
func Attach(mgr *sm.Manager, withClustered bool) error {
	for _, spec := range []struct {
		name   string
		schema *tuple.Schema
	}{
		{"REGION", RegionSchema}, {"NATION", NationSchema},
		{"SUPPLIER", SupplierSchema}, {"CUSTOMER", CustomerSchema},
		{"PART", PartSchema}, {"PARTSUPP", PartsuppSchema},
		{"ORDERS", OrdersSchema}, {"LINEITEM", LineitemSchema},
	} {
		if _, err := mgr.AttachTable(spec.name, spec.schema); err != nil {
			return err
		}
	}
	if withClustered {
		if err := mgr.AttachClusteredKey("ORDERS", "o_orderkey"); err != nil {
			return err
		}
		if err := mgr.AttachClusteredKey("LINEITEM", "l_orderkey"); err != nil {
			return err
		}
	}
	return nil
}
