// The paper's TPC-H query plans (Q1, Q4, Q6, Q8, Q12, Q13, Q14, Q19 — the
// mix of §5.3) as precompiled physical plans, plus the qgen-equivalent
// parameter randomization. Plans are built the way the paper's Figure 8-11
// captions describe them: unordered file scans feeding hybrid hash joins in
// the full-workload mix (§5.3: "we use hybrid hash joins exclusively...
// unordered scans for all the access paths"), with Q4 also available in the
// merge-join-over-clustered-index form of Figure 9.
package tpch

import (
	"math/rand"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// Params carries the qgen-style randomized constants for one query
// instance. Zero value = the TPC-H validation defaults.
type Params struct {
	Q1Delta     int64   // days subtracted from end date (60..120)
	Q4Month     int     // order date quarter start, months since 1993-01 (0..57)
	Q6Year      int     // 1993..1997
	Q6Discount  float64 // 0.02..0.09
	Q6Quantity  float64 // 24 or 25
	Q8Type      int64   // part type category
	Q8Region    string
	Q12Mode1    string
	Q12Mode2    string
	Q12Year     int
	Q14Month    int // months since 1993-01 (0..59)
	Q19Brand    string
	Q19Quantity float64
}

// DefaultParams returns the TPC-H validation parameters.
func DefaultParams() Params {
	return Params{
		Q1Delta: 90, Q4Month: 6, Q6Year: 1994, Q6Discount: 0.06, Q6Quantity: 24,
		Q8Type: 10, Q8Region: "AMERICA", Q12Mode1: "MAIL", Q12Mode2: "SHIP",
		Q12Year: 1994, Q14Month: 8, Q19Brand: "Brand#12", Q19Quantity: 1,
	}
}

// RandomParams draws a qgen-style parameter set.
func RandomParams(rng *rand.Rand) Params {
	return Params{
		Q1Delta:     int64(60 + rng.Intn(61)),
		Q4Month:     rng.Intn(58),
		Q6Year:      1993 + rng.Intn(5),
		Q6Discount:  float64(2+rng.Intn(8)) / 100,
		Q6Quantity:  float64(24 + rng.Intn(2)),
		Q8Type:      int64(rng.Intn(150)),
		Q8Region:    regionNames[rng.Intn(len(regionNames))],
		Q12Mode1:    shipmodes[rng.Intn(len(shipmodes))],
		Q12Mode2:    shipmodes[rng.Intn(len(shipmodes))],
		Q12Year:     1993 + rng.Intn(5),
		Q14Month:    rng.Intn(60),
		Q19Brand:    "Brand#23",
		Q19Quantity: float64(1 + rng.Intn(10)),
	}
}

func monthStart(monthsSince1993 int) int64 {
	y := 1993 + monthsSince1993/12
	m := time.Month(1 + monthsSince1993%12)
	return Days(y, m, 1)
}

func addMonths(monthsSince1993, add int) int64 {
	return monthStart(monthsSince1993 + add)
}

func col(s *tuple.Schema, name string) *expr.ColRef {
	return expr.NamedCol(s.MustColIndex(name), name)
}

// Q1 is the pricing-summary report: a full LINEITEM scan with a shipdate
// cutoff, grouped by (returnflag, linestatus) with five aggregates.
func Q1(p Params) plan.Node {
	s := LineitemSchema
	cutoff := EndDate - p.Q1Delta
	scan := plan.NewTableScan("LINEITEM", s, expr.LE(col(s, "l_shipdate"), expr.CDate(cutoff)), nil, false)
	qty := col(s, "l_quantity")
	price := col(s, "l_extendedprice")
	disc := col(s, "l_discount")
	discPrice := expr.Mul(price, expr.Sub(expr.CFloat(1), disc))
	return plan.NewGroupBy(scan,
		[]int{s.MustColIndex("l_returnflag"), s.MustColIndex("l_linestatus")},
		[]expr.AggSpec{
			{Kind: expr.AggSum, Arg: qty, Name: "sum_qty"},
			{Kind: expr.AggSum, Arg: price, Name: "sum_base_price"},
			{Kind: expr.AggSum, Arg: discPrice, Name: "sum_disc_price"},
			{Kind: expr.AggAvg, Arg: qty, Name: "avg_qty"},
			{Kind: expr.AggCount, Name: "count_order"},
		})
}

// Q6 is the forecasting-revenue query: 99% of its time is the unordered
// LINEITEM scan (the Figure 8 workload), topped by a single aggregate.
func Q6(p Params) plan.Node {
	s := LineitemSchema
	lo := Days(p.Q6Year, time.January, 1)
	hi := Days(p.Q6Year+1, time.January, 1)
	pred := expr.AndOf(
		expr.GE(col(s, "l_shipdate"), expr.CDate(lo)),
		expr.LT(col(s, "l_shipdate"), expr.CDate(hi)),
		&expr.Between{E: col(s, "l_discount"), Lo: tuple.F64(p.Q6Discount - 0.011), Hi: tuple.F64(p.Q6Discount + 0.011)},
		expr.LT(col(s, "l_quantity"), expr.CFloat(p.Q6Quantity)),
	)
	scan := plan.NewTableScan("LINEITEM", s, pred, nil, false)
	rev := expr.Mul(col(s, "l_extendedprice"), col(s, "l_discount"))
	return plan.NewAggregate(scan, []expr.AggSpec{{Kind: expr.AggSum, Arg: rev, Name: "revenue"}})
}

// q4Preds returns the ORDERS date-range predicate and the LINEITEM
// commit<receipt predicate of Q4.
func q4Preds(p Params) (expr.Pred, expr.Pred) {
	lo := monthStart(p.Q4Month)
	hi := addMonths(p.Q4Month, 3)
	os := OrdersSchema
	ls := LineitemSchema
	op := expr.AndOf(
		expr.GE(col(os, "o_orderdate"), expr.CDate(lo)),
		expr.LT(col(os, "o_orderdate"), expr.CDate(hi)),
	)
	lp := expr.LT(col(ls, "l_commitdate"), col(ls, "l_receiptdate"))
	return op, lp
}

// Q4MergeJoin is the Figure 9 plan: ordered clustered index scans on
// ORDERS and LINEITEM feeding a merge-join on orderkey, then a sort and a
// priority aggregation. The merge-join's parent (the sort) does not depend
// on its input order, which is what lets the OSP coordinator split the
// join to share an in-progress ordered scan.
func Q4MergeJoin(p Params) plan.Node {
	op, lp := q4Preds(p)
	oscan := plan.NewIndexScan("ORDERS", OrdersSchema, "o_orderkey", tuple.Value{}, tuple.Value{}, true, true, op, nil)
	lscan := plan.NewIndexScan("LINEITEM", LineitemSchema, "l_orderkey", tuple.Value{}, tuple.Value{}, true, true, lp, nil)
	mj := plan.NewMergeJoin(oscan, lscan, 0, 0, false)
	js := mj.Schema()
	srt := plan.NewSort(mj, []int{js.MustColIndex("o_orderpriority")}, false)
	return plan.NewGroupBy(srt,
		[]int{js.MustColIndex("o_orderpriority")},
		[]expr.AggSpec{{Kind: expr.AggCount, Name: "order_count"}})
}

// Q4HashJoin is the Figure 11 plan: unordered file scans feeding a hybrid
// hash join (ORDERS is the build side), then sort + aggregation.
func Q4HashJoin(p Params) plan.Node {
	op, lp := q4Preds(p)
	oscan := plan.NewTableScan("ORDERS", OrdersSchema, op, nil, false)
	lscan := plan.NewTableScan("LINEITEM", LineitemSchema, lp, nil, false)
	hj := plan.NewHashJoin(oscan, lscan, 0, 0)
	js := hj.Schema()
	srt := plan.NewSort(hj, []int{js.MustColIndex("o_orderpriority")}, false)
	return plan.NewGroupBy(srt,
		[]int{js.MustColIndex("o_orderpriority")},
		[]expr.AggSpec{{Kind: expr.AggCount, Name: "order_count"}})
}

// Q8 is the national-market-share query, evaluated as a chain of hybrid
// hash joins: ((((PART ⋈ LINEITEM) ⋈ ORDERS) ⋈ CUSTOMER) ⋈ NATION) ⋈
// REGION, grouped by order year.
func Q8(p Params) plan.Node {
	ps, ls, os, cs, ns, rs := PartSchema, LineitemSchema, OrdersSchema, CustomerSchema, NationSchema, RegionSchema
	part := plan.NewTableScan("PART", ps, expr.EQ(col(ps, "p_type"), expr.CInt(p.Q8Type)), nil, false)
	li := plan.NewTableScan("LINEITEM", ls, nil, nil, false)
	j1 := plan.NewHashJoin(part, li, ps.MustColIndex("p_partkey"), ls.MustColIndex("l_partkey"))
	j1s := j1.Schema()

	odLo, odHi := Days(1995, time.January, 1), Days(1996, time.December, 31)
	ord := plan.NewTableScan("ORDERS", os, expr.AndOf(
		expr.GE(col(os, "o_orderdate"), expr.CDate(odLo)),
		expr.LE(col(os, "o_orderdate"), expr.CDate(odHi)),
	), nil, false)
	j2 := plan.NewHashJoin(ord, j1, os.MustColIndex("o_orderkey"), j1s.MustColIndex("l_orderkey"))
	j2s := j2.Schema()

	custScan := plan.NewTableScan("CUSTOMER", cs, nil, nil, false)
	j3 := plan.NewHashJoin(custScan, j2, cs.MustColIndex("c_custkey"), j2s.MustColIndex("o_custkey"))
	j3s := j3.Schema()

	nation := plan.NewTableScan("NATION", ns, nil, nil, false)
	j4 := plan.NewHashJoin(nation, j3, ns.MustColIndex("n_nationkey"), j3s.MustColIndex("c_nationkey"))
	j4s := j4.Schema()

	region := plan.NewTableScan("REGION", rs, expr.EQ(col(rs, "r_name"), expr.CStr(p.Q8Region)), nil, false)
	j5 := plan.NewHashJoin(region, j4, rs.MustColIndex("r_regionkey"), j4s.MustColIndex("n_regionkey"))
	j5s := j5.Schema()

	rev := expr.Mul(
		expr.NamedCol(j5s.MustColIndex("l_extendedprice"), "l_extendedprice"),
		expr.Sub(expr.CFloat(1), expr.NamedCol(j5s.MustColIndex("l_discount"), "l_discount")))
	// Group by order year: integer-divide days since epoch by 365.25 is
	// avoided; use o_orderdate/365 as the grouping proxy (same shape).
	yearCol := j5s.MustColIndex("o_orderdate")
	proj := plan.NewProject(j5, []expr.Expr{
		expr.Div(expr.NamedCol(yearCol, "o_orderdate"), expr.CInt(365)),
		rev,
	}, []string{"o_year", "volume"})
	return plan.NewGroupBy(proj, []int{0}, []expr.AggSpec{
		{Kind: expr.AggSum, Arg: expr.Col(1), Name: "volume"},
		{Kind: expr.AggCount, Name: "n"},
	})
}

// Q12 is the shipping-modes query: LINEITEM filtered to two ship modes and
// a receipt-date year, hash-joined with ORDERS, grouped by ship mode.
func Q12(p Params) plan.Node {
	ls, os := LineitemSchema, OrdersSchema
	lo := Days(p.Q12Year, time.January, 1)
	hi := Days(p.Q12Year+1, time.January, 1)
	lpred := expr.AndOf(
		expr.InOf(col(ls, "l_shipmode"), tuple.Str(p.Q12Mode1), tuple.Str(p.Q12Mode2)),
		expr.LT(col(ls, "l_commitdate"), col(ls, "l_receiptdate")),
		expr.LT(col(ls, "l_shipdate"), col(ls, "l_commitdate")),
		expr.GE(col(ls, "l_receiptdate"), expr.CDate(lo)),
		expr.LT(col(ls, "l_receiptdate"), expr.CDate(hi)),
	)
	li := plan.NewTableScan("LINEITEM", ls, lpred, nil, false)
	ord := plan.NewTableScan("ORDERS", os, nil, nil, false)
	hj := plan.NewHashJoin(ord, li, os.MustColIndex("o_orderkey"), ls.MustColIndex("l_orderkey"))
	js := hj.Schema()
	prio := expr.NamedCol(js.MustColIndex("o_orderpriority"), "o_orderpriority")
	high := expr.InOf(prio, tuple.Str("1-URGENT"), tuple.Str("2-HIGH"))
	return plan.NewGroupBy(hj,
		[]int{js.MustColIndex("l_shipmode")},
		[]expr.AggSpec{
			{Kind: expr.AggSum, Arg: expr.CondOf(high, expr.CInt(1), expr.CInt(0)), Name: "high_line_count"},
			{Kind: expr.AggSum, Arg: expr.CondOf(expr.NotOf(high), expr.CInt(1), expr.CInt(0)), Name: "low_line_count"},
		})
}

// Q13 is the customer-distribution query: CUSTOMER ⋈ ORDERS grouped twice
// (orders per customer, then customers per order count).
func Q13(Params) plan.Node {
	cs, os := CustomerSchema, OrdersSchema
	custScan := plan.NewTableScan("CUSTOMER", cs, nil, nil, false)
	ord := plan.NewTableScan("ORDERS", os, nil, nil, false)
	hj := plan.NewHashJoin(custScan, ord, cs.MustColIndex("c_custkey"), os.MustColIndex("o_custkey"))
	js := hj.Schema()
	perCust := plan.NewGroupBy(hj,
		[]int{js.MustColIndex("c_custkey")},
		[]expr.AggSpec{{Kind: expr.AggCount, Name: "c_count"}})
	// perCust schema: (c_custkey, c_count).
	return plan.NewGroupBy(perCust, []int{1},
		[]expr.AggSpec{{Kind: expr.AggCount, Name: "custdist"}})
}

// Q14 is the promotion-effect query: LINEITEM for one month ⋈ PART,
// aggregating promo revenue share (p_type < PromoTypeMax counts as PROMO).
func Q14(p Params) plan.Node {
	ls, ps := LineitemSchema, PartSchema
	lo := monthStart(p.Q14Month)
	hi := addMonths(p.Q14Month, 1)
	lpred := expr.AndOf(
		expr.GE(col(ls, "l_shipdate"), expr.CDate(lo)),
		expr.LT(col(ls, "l_shipdate"), expr.CDate(hi)),
	)
	li := plan.NewTableScan("LINEITEM", ls, lpred, nil, false)
	part := plan.NewTableScan("PART", ps, nil, nil, false)
	hj := plan.NewHashJoin(part, li, ps.MustColIndex("p_partkey"), ls.MustColIndex("l_partkey"))
	js := hj.Schema()
	rev := expr.Mul(
		expr.NamedCol(js.MustColIndex("l_extendedprice"), "l_extendedprice"),
		expr.Sub(expr.CFloat(1), expr.NamedCol(js.MustColIndex("l_discount"), "l_discount")))
	promo := expr.LT(expr.NamedCol(js.MustColIndex("p_type"), "p_type"), expr.CInt(PromoTypeMax))
	return plan.NewAggregate(hj, []expr.AggSpec{
		{Kind: expr.AggSum, Arg: expr.CondOf(promo, rev, expr.CFloat(0)), Name: "promo_revenue"},
		{Kind: expr.AggSum, Arg: rev, Name: "total_revenue"},
	})
}

// Q19 is the discounted-revenue query: LINEITEM ⋈ PART with disjunctive
// bracket predicates over the joined row.
func Q19(p Params) plan.Node {
	ls, ps := LineitemSchema, PartSchema
	li := plan.NewTableScan("LINEITEM", ls,
		expr.InOf(col(ls, "l_shipmode"), tuple.Str("AIR"), tuple.Str("REG AIR")), nil, false)
	part := plan.NewTableScan("PART", ps, nil, nil, false)
	hj := plan.NewHashJoin(part, li, ps.MustColIndex("p_partkey"), ls.MustColIndex("l_partkey"))
	js := hj.Schema()
	brand := expr.NamedCol(js.MustColIndex("p_brand"), "p_brand")
	qty := expr.NamedCol(js.MustColIndex("l_quantity"), "l_quantity")
	size := expr.NamedCol(js.MustColIndex("p_size"), "p_size")
	container := expr.NamedCol(js.MustColIndex("p_container"), "p_container")
	bracket := func(b string, qlo float64, sizeHi int64, conts ...tuple.Value) expr.Pred {
		return expr.AndOf(
			expr.EQ(brand, expr.CStr(b)),
			expr.GE(qty, expr.CFloat(qlo)),
			expr.LE(qty, expr.CFloat(qlo+10)),
			expr.LE(size, expr.CInt(sizeHi)),
			expr.InOf(container, conts...),
		)
	}
	pred := expr.OrOf(
		bracket(p.Q19Brand, p.Q19Quantity, 5, tuple.Str("SM CASE"), tuple.Str("SM BOX"), tuple.Str("SM PACK"), tuple.Str("SM PKG")),
		bracket("Brand#23", p.Q19Quantity+9, 10, tuple.Str("MED BAG"), tuple.Str("MED BOX"), tuple.Str("MED PKG")),
		bracket("Brand#34", p.Q19Quantity+19, 15, tuple.Str("LG CASE"), tuple.Str("LG BOX"), tuple.Str("LG PACK"), tuple.Str("LG PKG")),
	)
	f := plan.NewFilter(hj, pred)
	rev := expr.Mul(
		expr.NamedCol(js.MustColIndex("l_extendedprice"), "l_extendedprice"),
		expr.Sub(expr.CFloat(1), expr.NamedCol(js.MustColIndex("l_discount"), "l_discount")))
	return plan.NewAggregate(f, []expr.AggSpec{{Kind: expr.AggSum, Arg: rev, Name: "revenue"}})
}

// MixQueries are the paper's §5.3 workload: queries 1, 4, 6, 8, 12, 13, 14
// and 19, all with hybrid hash joins and unordered scans.
var MixQueries = []int{1, 4, 6, 8, 12, 13, 14, 19}

// Query builds query number q with the given parameters (Q4 in its
// hash-join form, as the mix uses).
func Query(q int, p Params) plan.Node {
	switch q {
	case 1:
		return Q1(p)
	case 4:
		return Q4HashJoin(p)
	case 6:
		return Q6(p)
	case 8:
		return Q8(p)
	case 12:
		return Q12(p)
	case 13:
		return Q13(p)
	case 14:
		return Q14(p)
	case 19:
		return Q19(p)
	default:
		panic("tpch: unknown query in mix")
	}
}

// RandomMixQuery draws a random mix query with qgen-randomized parameters.
func RandomMixQuery(rng *rand.Rand) (int, plan.Node) {
	q := MixQueries[rng.Intn(len(MixQueries))]
	return q, Query(q, RandomParams(rng))
}
