-- planshare: the optimizer-convergence mix. Every group below is one query
-- written three ways — operands commuted, conjuncts shuffled, BETWEEN spelled
-- as range bounds, FROM order swapped. The pre-normalization planner lowered
-- each spelling to a distinct plan signature, so the OSP registry saw twelve
-- strangers; the cost-based planner (normalize -> estimate -> reorder) folds
-- each group to one signature, so concurrent clients share at the aggregate,
-- join and sort µEngines (the wide windows of opportunity, paper §4.3).
--
-- Run it yourself:
--   go run ./cmd/qpipe-bench -fig planshare
--   go run ./cmd/qpipe-bench -fig planshare -no-opt     # optimizer off, both arms

SET batch_size = 64;

-- Group A: scan-aggregate; commuted comparison and a vacuous conjunct.
SELECT sum(amount) AS revenue, count(*) AS n
FROM orders
WHERE amount < 500;

SELECT sum(amount) AS revenue, count(*) AS n
FROM orders
WHERE 500 > amount;

SELECT sum(amount) AS revenue, count(*) AS n
FROM orders
WHERE amount < 500 AND 1 = 1;

-- Group B: join + group-by; ON commuted, FROM sides swapped, comma syntax.
SELECT segment, sum(amount) AS revenue
FROM customers c JOIN orders o ON c.cid = o.cust
WHERE segment = 1
GROUP BY segment;

SELECT segment, sum(amount) AS revenue
FROM orders o JOIN customers c ON o.cust = c.cid
WHERE 1 = segment
GROUP BY segment;

SELECT segment, sum(amount) AS revenue
FROM customers c, orders o
WHERE o.cust = c.cid AND segment = 1
GROUP BY segment;

-- Group C: comma join with a band; BETWEEN vs explicit bounds, shuffled
-- conjuncts, commuted equality.
SELECT region, count(*) AS n
FROM customers, orders
WHERE cid = cust AND amount BETWEEN 100 AND 800
GROUP BY region;

SELECT region, count(*) AS n
FROM orders, customers
WHERE amount >= 100 AND cust = cid AND amount <= 800
GROUP BY region;

SELECT region, count(*) AS n
FROM customers, orders
WHERE 100 <= amount AND amount <= 800 AND cid = cust
GROUP BY region;

-- Group D: top spenders; commuted range, a redundant NOT, and one variant
-- without LIMIT (the limit is applied at the result, not in the plan, so
-- the sort still shares).
SELECT oid, amount
FROM orders
WHERE amount > 900
ORDER BY amount DESC
LIMIT 10;

SELECT oid, amount
FROM orders
WHERE 900 < amount
ORDER BY amount DESC
LIMIT 10;

SELECT oid, amount
FROM orders
WHERE amount > 900 AND NOT (amount <= 900)
ORDER BY amount DESC;
