package sqlmix

import (
	"context"
	"strings"
	"testing"

	"qpipe"
)

func TestEmbeddedMixParses(t *testing.T) {
	m, err := Parse(TPCHMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Queries) != 7 {
		t.Errorf("queries = %d, want 7", len(m.Queries))
	}
	if m.Session.BatchSize != 64 {
		t.Errorf("session batch_size = %d, want 64 (from the SET statement)", m.Session.BatchSize)
	}
}

func TestEmbeddedPlanShareMixParses(t *testing.T) {
	m, err := Parse(PlanShareMix())
	if err != nil {
		t.Fatal(err)
	}
	// Four variant groups of three spellings each.
	if len(m.Queries) != 12 {
		t.Errorf("queries = %d, want 12", len(m.Queries))
	}
}

func TestMixRejectsDDL(t *testing.T) {
	if _, err := Parse("CREATE TABLE t (a INT); SELECT a FROM t"); err == nil ||
		!strings.Contains(err.Error(), "SELECT and SET") {
		t.Errorf("DDL in mix: got %v", err)
	}
}

func TestMixEndToEnd(t *testing.T) {
	db, err := qpipe.Open(qpipe.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := Populate(db, 2_000, 100); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(TPCHMix())
	if err != nil {
		t.Fatal(err)
	}
	// Every query type-checks against the populated catalog.
	if _, err := m.Compile(db); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), db, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 12 {
		t.Errorf("queries = %d, want 12", res.Queries)
	}
	if res.Rows == 0 {
		t.Error("mix drained zero rows")
	}
	// And an opted-out run still works (the bench's Baseline side).
	if _, err := m.Run(context.Background(), db, 2, 2, qpipe.WithoutOSP()); err != nil {
		t.Fatal(err)
	}
}
