// Package sqlmix runs declarative SQL query mixes: a .sql file's SELECT
// statements dealt round-robin to concurrent clients through db.Query, with
// SET statements folded into a qpipe.Session. It is the SQL-text successor
// to the hand-built plan mixes — the tpchmix scenario (examples/tpchmix,
// qpipe-bench -fig sqlmix, the shell's -demo dataset) runs from the
// embedded tpchmix.sql instead of Go code, so new mixes are a text file
// away.
package sqlmix

import (
	"context"
	_ "embed"
	"fmt"
	"sync"
	"time"

	"qpipe"
	"qpipe/sql"
)

//go:embed tpchmix.sql
var tpchMix string

//go:embed schema.sql
var tpchSchema string

//go:embed planshare.sql
var planShareMix string

// TPCHMix returns the embedded tpchmix query mix (SQL text).
func TPCHMix() string { return tpchMix }

// PlanShareMix returns the embedded planshare query mix (SQL text): every
// query written three ways — commuted comparisons, shuffled conjuncts,
// BETWEEN vs explicit bounds, swapped join order — so the optimizer's plan
// normalization is what turns the spellings into OSP sharing opportunities.
func PlanShareMix() string { return planShareMix }

// TPCHSchema returns the embedded tpchmix DDL (SQL text).
func TPCHSchema() string { return tpchSchema }

// Mix is a parsed query mix: the SELECT statements to deal to clients and
// the session settings the script's SET statements established.
type Mix struct {
	// Queries are the mix's SELECT statements, rendered canonically.
	Queries []string
	// Session carries the script's SET statements (parallelism, batch_size,
	// osp), applied to every query run.
	Session qpipe.Session
}

// Parse builds a Mix from SQL text. Statements other than SELECT and SET
// are rejected: a mix file declares load, not schema (use db.Exec for DDL
// scripts).
func Parse(text string) (*Mix, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return nil, err
	}
	m := &Mix{}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *sql.Select:
			m.Queries = append(m.Queries, s.String())
		case *sql.Set:
			if err := m.Session.Apply(s); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sqlmix: mix files hold SELECT and SET statements only, got %T (%s)", stmt, stmt)
		}
	}
	if len(m.Queries) == 0 {
		return nil, fmt.Errorf("sqlmix: no SELECT statements in mix")
	}
	return m, nil
}

// Compile type-checks every mix query against the DB's catalog, returning
// the prepared queries (and surfacing unknown tables/columns before any
// client starts).
func (m *Mix) Compile(db *qpipe.DB) ([]*qpipe.Query, error) {
	out := make([]*qpipe.Query, len(m.Queries))
	for i, text := range m.Queries {
		q, err := db.Prepare(text)
		if err != nil {
			return nil, fmt.Errorf("sqlmix: query %d: %w", i+1, err)
		}
		out[i] = q
	}
	return out, nil
}

// Result summarizes one mix run.
type Result struct {
	Elapsed time.Duration
	// Queries is the number of query executions completed.
	Queries int
	// Rows is the total number of result rows drained.
	Rows int64
	// Shares counts OSP sharing events during the run.
	Shares int64
	// BlocksRead counts simulated disk blocks read during the run.
	BlocksRead int64
}

// Run deals the mix's queries round-robin to clients concurrent workers,
// each executing perClient queries through db.Query and discarding the
// rows (the paper's experiments discard result tuples). extra options are
// appended after the mix session's own (so a caller's WithoutOSP wins for
// A/B runs). Counters are deltas over the run.
func (m *Mix) Run(ctx context.Context, db *qpipe.DB, clients, perClient int, extra ...qpipe.QueryOption) (Result, error) {
	opts := append(m.Session.Options(), extra...)
	sharesBefore := db.TotalShares()
	readsBefore := db.DiskStats().Reads

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var rows int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := db.Query(ctx, m.Queries[(c+i)%len(m.Queries)], opts...)
				var n int64
				if err == nil {
					n, err = res.Discard()
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				rows += n
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	r := Result{
		Elapsed:    time.Since(start),
		Queries:    clients * perClient,
		Rows:       rows,
		Shares:     db.TotalShares() - sharesBefore,
		BlocksRead: db.DiskStats().Reads - readsBefore,
	}
	return r, firstErr
}

// Populate creates and fills the tpchmix tables: DDL from the embedded
// schema.sql through db.Exec, data generated deterministically (the same
// distribution examples/tpchmix uses).
func Populate(db *qpipe.DB, orders, customers int) error {
	if _, err := db.Exec(context.Background(), tpchSchema); err != nil {
		return err
	}
	rows := make([]qpipe.Row, orders)
	for i := range rows {
		rows[i] = qpipe.R(i, i%customers, i%7, i%5, float64(i%997))
	}
	if err := db.Load("orders", rows); err != nil {
		return err
	}
	custs := make([]qpipe.Row, customers)
	for i := range custs {
		custs[i] = qpipe.R(i, i%4, float64(i%500))
	}
	return db.Load("customers", custs)
}
