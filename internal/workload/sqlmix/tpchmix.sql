-- tpchmix: the concurrent-analytics mix (a miniature of the paper's §5.3
-- full-workload experiment) as declarative text. The schema and queries
-- mirror examples/tpchmix; the runner deals the SELECTs below round-robin
-- to concurrent clients, so overlapping work between them becomes OSP
-- shared packets at run time.
--
-- Run it yourself:
--   go run ./cmd/qpipe-shell -demo -f internal/workload/sqlmix/tpchmix.sql
--   go run ./cmd/qpipe-bench -fig sqlmix

SET batch_size = 64;

-- Q1: revenue scan-aggregate over mid-size orders.
SELECT sum(amount) AS revenue, count(*) AS n
FROM orders
WHERE amount < 500;

-- Q1b: Q1 with the comparison commuted. The cost-based planner normalizes
-- it to Q1's exact plan signature, so a client running Q1b shares the whole
-- scan-aggregate with a concurrent Q1 instead of only the circular scan.
SELECT sum(amount) AS revenue, count(*) AS n
FROM orders
WHERE 500 > amount;

-- Q2: per-region priority report.
SELECT region, count(*) AS n, avg(amount) AS avg_amount
FROM orders
WHERE priority = 2
GROUP BY region;

-- Q3: customer-segment revenue (hash join + group-by).
SELECT segment, sum(amount) AS revenue
FROM customers c JOIN orders o ON c.cid = o.cust
WHERE segment = 1
GROUP BY segment;

-- Q3b: Q3 with the join sides swapped and the ON equality commuted —
-- cardinality-based join reordering converges both spellings on the same
-- build side, so Q3/Q3b share the join and group-by, not just the scans.
SELECT segment, sum(amount) AS revenue
FROM orders o JOIN customers c ON o.cust = c.cid
WHERE segment = 1
GROUP BY segment;

-- Q4: comma-syntax join variant with a band predicate.
SELECT region, count(*) AS n
FROM customers, orders
WHERE cid = cust AND amount BETWEEN 100 AND 800
GROUP BY region;

-- Q5: top spenders, result-limited.
SELECT oid, amount
FROM orders
WHERE amount > 900
ORDER BY amount DESC
LIMIT 10;
