-- tpchmix: the concurrent-analytics mix (a miniature of the paper's §5.3
-- full-workload experiment) as declarative text. The schema and queries
-- mirror examples/tpchmix; the runner deals the SELECTs below round-robin
-- to concurrent clients, so overlapping work between them becomes OSP
-- shared packets at run time.
--
-- Run it yourself:
--   go run ./cmd/qpipe-shell -demo -f internal/workload/sqlmix/tpchmix.sql
--   go run ./cmd/qpipe-bench -fig sqlmix

SET batch_size = 64;

-- Q1: revenue scan-aggregate over mid-size orders.
SELECT sum(amount) AS revenue, count(*) AS n
FROM orders
WHERE amount < 500;

-- Q2: per-region priority report.
SELECT region, count(*) AS n, avg(amount) AS avg_amount
FROM orders
WHERE priority = 2
GROUP BY region;

-- Q3: customer-segment revenue (hash join + group-by).
SELECT segment, sum(amount) AS revenue
FROM customers c JOIN orders o ON c.cid = o.cust
WHERE segment = 1
GROUP BY segment;

-- Q4: comma-syntax join variant with a band predicate.
SELECT region, count(*) AS n
FROM customers, orders
WHERE cid = cust AND amount BETWEEN 100 AND 800
GROUP BY region;

-- Q5: top spenders, result-limited.
SELECT oid, amount
FROM orders
WHERE amount > 900
ORDER BY amount DESC
LIMIT 10;
