package expr

import (
	"testing"

	"qpipe/internal/tuple"
)

var row = tuple.Tuple{tuple.I64(10), tuple.F64(2.5), tuple.Str("mail"), tuple.Date(100)}

func TestColAndConst(t *testing.T) {
	if v := Col(0).Eval(row); v.I != 10 {
		t.Errorf("Col(0): %v", v)
	}
	if v := CInt(7).Eval(row); v.I != 7 {
		t.Errorf("CInt: %v", v)
	}
	if v := CFloat(1.5).Eval(row); v.F != 1.5 {
		t.Errorf("CFloat: %v", v)
	}
	if v := CStr("x").Eval(row); v.S != "x" {
		t.Errorf("CStr: %v", v)
	}
	if v := CDate(5).Eval(row); v.I != 5 || v.K != tuple.KindDate {
		t.Errorf("CDate: %v", v)
	}
}

func TestArithInt(t *testing.T) {
	if v := Add(Col(0), CInt(5)).Eval(row); v.K != tuple.KindInt || v.I != 15 {
		t.Errorf("Add: %v", v)
	}
	if v := Sub(Col(0), CInt(3)).Eval(row); v.I != 7 {
		t.Errorf("Sub: %v", v)
	}
	if v := Mul(Col(0), CInt(4)).Eval(row); v.I != 40 {
		t.Errorf("Mul: %v", v)
	}
}

func TestArithFloatPromotion(t *testing.T) {
	if v := Add(Col(0), Col(1)).Eval(row); v.K != tuple.KindFloat || v.F != 12.5 {
		t.Errorf("int+float: %v", v)
	}
	if v := Div(Col(0), CInt(4)).Eval(row); v.K != tuple.KindFloat || v.F != 2.5 {
		t.Errorf("Div always float: %v", v)
	}
	if v := Div(Col(0), CInt(0)).Eval(row); v.F != 0 {
		t.Errorf("Div by zero: %v", v)
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		p    Pred
		want bool
	}{
		{EQ(Col(0), CInt(10)), true},
		{NE(Col(0), CInt(10)), false},
		{LT(Col(0), CInt(11)), true},
		{LE(Col(0), CInt(10)), true},
		{GT(Col(0), CInt(10)), false},
		{GE(Col(0), CInt(10)), true},
		{EQ(Col(2), CStr("mail")), true},
		{LT(Col(3), CDate(200)), true},
	}
	for i, c := range cases {
		if got := c.p.Test(row); got != c.want {
			t.Errorf("case %d (%s): got %v", i, c.p.Signature(), got)
		}
	}
}

func TestBoolConnectives(t *testing.T) {
	tr := EQ(Col(0), CInt(10))
	fa := EQ(Col(0), CInt(11))
	if !AndOf(tr, tr).Test(row) || AndOf(tr, fa).Test(row) {
		t.Error("And")
	}
	if !AndOf().Test(row) {
		t.Error("empty And should be true")
	}
	if !OrOf(fa, tr).Test(row) || OrOf(fa, fa).Test(row) {
		t.Error("Or")
	}
	if OrOf().Test(row) {
		t.Error("empty Or should be false")
	}
	if NotOf(tr).Test(row) || !NotOf(fa).Test(row) {
		t.Error("Not")
	}
	if !(True{}).Test(row) {
		t.Error("True")
	}
}

func TestInAndBetween(t *testing.T) {
	in := InOf(Col(2), tuple.Str("ship"), tuple.Str("mail"))
	if !in.Test(row) {
		t.Error("In should match")
	}
	in2 := InOf(Col(2), tuple.Str("air"))
	if in2.Test(row) {
		t.Error("In should not match")
	}
	b := BetweenOf(Col(3), tuple.Date(100), tuple.Date(200))
	if !b.Test(row) {
		t.Error("Between inclusive lo")
	}
	bx := &Between{E: Col(3), Lo: tuple.Date(100), Hi: tuple.Date(200), LoX: true}
	if bx.Test(row) {
		t.Error("Between exclusive lo")
	}
	bh := &Between{E: Col(3), Lo: tuple.Date(0), Hi: tuple.Date(100), HiX: true}
	if bh.Test(row) {
		t.Error("Between exclusive hi")
	}
}

func TestSignatureStability(t *testing.T) {
	// Structurally identical expressions must have identical signatures
	// (this is what OSP's packet comparison relies on).
	p1 := AndOf(EQ(Col(0), CInt(10)), BetweenOf(Col(3), tuple.Date(1), tuple.Date(2)))
	p2 := AndOf(EQ(Col(0), CInt(10)), BetweenOf(Col(3), tuple.Date(1), tuple.Date(2)))
	if p1.Signature() != p2.Signature() {
		t.Errorf("identical predicates differ: %q vs %q", p1.Signature(), p2.Signature())
	}
	p3 := AndOf(EQ(Col(0), CInt(11)), BetweenOf(Col(3), tuple.Date(1), tuple.Date(2)))
	if p1.Signature() == p3.Signature() {
		t.Error("different constants must differ in signature")
	}
	p4 := AndOf(EQ(Col(1), CInt(10)), BetweenOf(Col(3), tuple.Date(1), tuple.Date(2)))
	if p1.Signature() == p4.Signature() {
		t.Error("different columns must differ in signature")
	}
}

func TestSignatureDistinguishesOps(t *testing.T) {
	if EQ(Col(0), CInt(1)).Signature() == NE(Col(0), CInt(1)).Signature() {
		t.Error("EQ vs NE")
	}
	if Add(Col(0), CInt(1)).Signature() == Sub(Col(0), CInt(1)).Signature() {
		t.Error("Add vs Sub")
	}
	if InOf(Col(0), tuple.I64(1)).Signature() == InOf(Col(0), tuple.I64(2)).Signature() {
		t.Error("In values")
	}
	if NotOf(True{}).Signature() == (True{}).Signature() {
		t.Error("Not vs True")
	}
	if OrOf(True{}).Signature() == AndOf(True{}).Signature() {
		t.Error("Or vs And")
	}
}

func TestAggStates(t *testing.T) {
	rows := []tuple.Tuple{
		{tuple.F64(1)}, {tuple.F64(3)}, {tuple.F64(2)},
	}
	specs := []struct {
		spec AggSpec
		want tuple.Value
	}{
		{AggSpec{Kind: AggCount}, tuple.I64(3)},
		{AggSpec{Kind: AggSum, Arg: Col(0)}, tuple.F64(6)},
		{AggSpec{Kind: AggAvg, Arg: Col(0)}, tuple.F64(2)},
		{AggSpec{Kind: AggMin, Arg: Col(0)}, tuple.F64(1)},
		{AggSpec{Kind: AggMax, Arg: Col(0)}, tuple.F64(3)},
	}
	for _, s := range specs {
		st := NewAggState(s.spec)
		for _, r := range rows {
			st.Add(r)
		}
		if got := st.Result(); tuple.Compare(got, s.want) != 0 {
			t.Errorf("%s: got %v want %v", s.spec.Signature(), got, s.want)
		}
	}
}

func TestAggMerge(t *testing.T) {
	spec := AggSpec{Kind: AggMin, Arg: Col(0)}
	a, b := NewAggState(spec), NewAggState(spec)
	a.Add(tuple.Tuple{tuple.F64(5)})
	b.Add(tuple.Tuple{tuple.F64(2)})
	a.Merge(b)
	if got := a.Result(); got.F != 2 {
		t.Errorf("merged min: %v", got)
	}
	// Merge into empty state.
	c := NewAggState(spec)
	c.Merge(a)
	if got := c.Result(); got.F != 2 {
		t.Errorf("merge into empty: %v", got)
	}
	// Count through merge.
	sc := AggSpec{Kind: AggCount}
	x, y := NewAggState(sc), NewAggState(sc)
	x.Add(row)
	y.Add(row)
	y.Add(row)
	x.Merge(y)
	if got := x.Result(); got.I != 3 {
		t.Errorf("merged count: %v", got)
	}
}

func TestAvgEmpty(t *testing.T) {
	st := NewAggState(AggSpec{Kind: AggAvg, Arg: Col(0)})
	if got := st.Result(); got.F != 0 {
		t.Errorf("avg of empty: %v", got)
	}
}
