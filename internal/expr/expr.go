// Package expr provides the scalar-expression and predicate language used
// by plan nodes: column references, constants, arithmetic, comparisons and
// boolean connectives. Expressions evaluate against a tuple.Tuple and carry
// a stable Signature() string so the OSP coordinator can compare the encoded
// argument lists of two packets cheaply (paper §4.3: "a quick check of the
// encoded argument list for each packet").
package expr

import (
	"fmt"
	"strings"

	"qpipe/internal/tuple"
)

// Expr is a scalar expression over an input tuple.
type Expr interface {
	// Eval computes the expression's value for one input tuple.
	Eval(t tuple.Tuple) tuple.Value
	// Signature renders a canonical encoding of the expression used for
	// run-time overlap detection. Structurally identical expressions have
	// identical signatures.
	Signature() string
}

// ---- Leaves ----------------------------------------------------------------

// ColRef references an input column by position.
type ColRef struct {
	Ix   int
	Name string // optional, for display only
}

// Col constructs a column reference.
func Col(ix int) *ColRef { return &ColRef{Ix: ix} }

// NamedCol constructs a column reference that remembers its display name.
func NamedCol(ix int, name string) *ColRef { return &ColRef{Ix: ix, Name: name} }

// Eval implements Expr.
func (c *ColRef) Eval(t tuple.Tuple) tuple.Value { return t[c.Ix] }

// Signature implements Expr. Only the position matters for equivalence.
func (c *ColRef) Signature() string { return fmt.Sprintf("c%d", c.Ix) }

// Const is a constant value.
type Const struct{ V tuple.Value }

// CInt, CFloat, CStr and CDate build constants of each kind.
func CInt(v int64) *Const     { return &Const{V: tuple.I64(v)} }
func CFloat(v float64) *Const { return &Const{V: tuple.F64(v)} }
func CStr(v string) *Const    { return &Const{V: tuple.Str(v)} }
func CDate(v int64) *Const    { return &Const{V: tuple.Date(v)} }

// Eval implements Expr.
func (c *Const) Eval(tuple.Tuple) tuple.Value { return c.V }

// Signature implements Expr.
func (c *Const) Signature() string {
	return fmt.Sprintf("k%d:%s", c.V.K, c.V.String())
}

// ---- Arithmetic ------------------------------------------------------------

// ArithOp enumerates binary arithmetic operators.
type ArithOp uint8

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith is a binary arithmetic expression. Integer inputs produce integer
// results except for division, which always produces a float (matching how
// the TPC-H aggregate expressions like l_extendedprice*(1-l_discount) are
// computed in practice).
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Add, Sub, Mul and Div build arithmetic nodes.
func Add(l, r Expr) *Arith { return &Arith{Op: OpAdd, L: l, R: r} }
func Sub(l, r Expr) *Arith { return &Arith{Op: OpSub, L: l, R: r} }
func Mul(l, r Expr) *Arith { return &Arith{Op: OpMul, L: l, R: r} }
func Div(l, r Expr) *Arith { return &Arith{Op: OpDiv, L: l, R: r} }

// Eval implements Expr.
func (a *Arith) Eval(t tuple.Tuple) tuple.Value {
	l, r := a.L.Eval(t), a.R.Eval(t)
	if a.Op == OpDiv {
		rf := r.AsFloat()
		if rf == 0 {
			return tuple.F64(0)
		}
		return tuple.F64(l.AsFloat() / rf)
	}
	if l.K == tuple.KindInt && r.K == tuple.KindInt {
		switch a.Op {
		case OpAdd:
			return tuple.I64(l.I + r.I)
		case OpSub:
			return tuple.I64(l.I - r.I)
		case OpMul:
			return tuple.I64(l.I * r.I)
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch a.Op {
	case OpAdd:
		return tuple.F64(lf + rf)
	case OpSub:
		return tuple.F64(lf - rf)
	default:
		return tuple.F64(lf * rf)
	}
}

// Signature implements Expr.
func (a *Arith) Signature() string {
	return "(" + a.L.Signature() + a.Op.String() + a.R.Signature() + ")"
}

// ---- Predicates ------------------------------------------------------------

// Pred is a boolean predicate over an input tuple.
type Pred interface {
	Test(t tuple.Tuple) bool
	Signature() string
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[o] }

// Cmp compares two scalar expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// EQ..GE build comparison predicates.
func EQ(l, r Expr) *Cmp { return &Cmp{Op: CmpEQ, L: l, R: r} }
func NE(l, r Expr) *Cmp { return &Cmp{Op: CmpNE, L: l, R: r} }
func LT(l, r Expr) *Cmp { return &Cmp{Op: CmpLT, L: l, R: r} }
func LE(l, r Expr) *Cmp { return &Cmp{Op: CmpLE, L: l, R: r} }
func GT(l, r Expr) *Cmp { return &Cmp{Op: CmpGT, L: l, R: r} }
func GE(l, r Expr) *Cmp { return &Cmp{Op: CmpGE, L: l, R: r} }

// Test implements Pred.
func (c *Cmp) Test(t tuple.Tuple) bool {
	r := tuple.Compare(c.L.Eval(t), c.R.Eval(t))
	switch c.Op {
	case CmpEQ:
		return r == 0
	case CmpNE:
		return r != 0
	case CmpLT:
		return r < 0
	case CmpLE:
		return r <= 0
	case CmpGT:
		return r > 0
	default:
		return r >= 0
	}
}

// Signature implements Pred.
func (c *Cmp) Signature() string {
	return "(" + c.L.Signature() + c.Op.String() + c.R.Signature() + ")"
}

// And is an n-ary conjunction.
type And struct{ Ps []Pred }

// AndOf builds a conjunction; nil and empty conjunctions are always true.
func AndOf(ps ...Pred) *And { return &And{Ps: ps} }

// Test implements Pred.
func (a *And) Test(t tuple.Tuple) bool {
	for _, p := range a.Ps {
		if !p.Test(t) {
			return false
		}
	}
	return true
}

// Signature implements Pred.
func (a *And) Signature() string {
	parts := make([]string, len(a.Ps))
	for i, p := range a.Ps {
		parts[i] = p.Signature()
	}
	return "and(" + strings.Join(parts, ",") + ")"
}

// Or is an n-ary disjunction.
type Or struct{ Ps []Pred }

// OrOf builds a disjunction; empty disjunctions are always false.
func OrOf(ps ...Pred) *Or { return &Or{Ps: ps} }

// Test implements Pred.
func (o *Or) Test(t tuple.Tuple) bool {
	for _, p := range o.Ps {
		if p.Test(t) {
			return true
		}
	}
	return false
}

// Signature implements Pred.
func (o *Or) Signature() string {
	parts := make([]string, len(o.Ps))
	for i, p := range o.Ps {
		parts[i] = p.Signature()
	}
	return "or(" + strings.Join(parts, ",") + ")"
}

// Not negates a predicate.
type Not struct{ P Pred }

// NotOf builds a negation.
func NotOf(p Pred) *Not { return &Not{P: p} }

// Test implements Pred.
func (n *Not) Test(t tuple.Tuple) bool { return !n.P.Test(t) }

// Signature implements Pred.
func (n *Not) Signature() string { return "not(" + n.P.Signature() + ")" }

// True is a predicate that always holds; used where a plan slot requires a
// predicate but the query has none.
type True struct{}

// Test implements Pred.
func (True) Test(tuple.Tuple) bool { return true }

// Signature implements Pred.
func (True) Signature() string { return "true" }

// In tests membership of an expression in a fixed set of values (used by
// TPC-H Q12's l_shipmode IN ('MAIL','SHIP') and Q19's bracket predicates).
type In struct {
	E    Expr
	Vals []tuple.Value
}

// InOf builds a membership predicate.
func InOf(e Expr, vals ...tuple.Value) *In { return &In{E: e, Vals: vals} }

// Test implements Pred.
func (in *In) Test(t tuple.Tuple) bool {
	v := in.E.Eval(t)
	for _, w := range in.Vals {
		if tuple.Equal(v, w) {
			return true
		}
	}
	return false
}

// Signature implements Pred.
func (in *In) Signature() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		parts[i] = v.String()
	}
	return "in(" + in.E.Signature() + ";" + strings.Join(parts, ",") + ")"
}

// Between is an inclusive range predicate, common in TPC-H date filters.
type Between struct {
	E        Expr
	Lo, Hi   tuple.Value
	LoX, HiX bool // exclusive bounds when true
}

// BetweenOf builds an inclusive range predicate lo <= e <= hi.
func BetweenOf(e Expr, lo, hi tuple.Value) *Between { return &Between{E: e, Lo: lo, Hi: hi} }

// Test implements Pred.
func (b *Between) Test(t tuple.Tuple) bool {
	v := b.E.Eval(t)
	lc := tuple.Compare(v, b.Lo)
	hc := tuple.Compare(v, b.Hi)
	if b.LoX {
		if lc <= 0 {
			return false
		}
	} else if lc < 0 {
		return false
	}
	if b.HiX {
		return hc < 0
	}
	return hc <= 0
}

// Signature implements Pred.
func (b *Between) Signature() string {
	return fmt.Sprintf("btw(%s;%s;%s;%v;%v)", b.E.Signature(), b.Lo, b.Hi, b.LoX, b.HiX)
}

// Cond is a conditional expression (CASE WHEN p THEN a ELSE b END), used by
// TPC-H-style conditional aggregates such as Q14's promo revenue share.
type Cond struct {
	If         Pred
	Then, Else Expr
}

// CondOf builds a conditional expression.
func CondOf(p Pred, then, els Expr) *Cond { return &Cond{If: p, Then: then, Else: els} }

// Eval implements Expr.
func (c *Cond) Eval(t tuple.Tuple) tuple.Value {
	if c.If.Test(t) {
		return c.Then.Eval(t)
	}
	return c.Else.Eval(t)
}

// Signature implements Expr.
func (c *Cond) Signature() string {
	return "cond(" + c.If.Signature() + ";" + c.Then.Signature() + ";" + c.Else.Signature() + ")"
}

// ---- Introspection ---------------------------------------------------------

// ExprRefs calls fn with the column index of every column reference in e
// (validation hook: plan.Validate bounds-checks references against the
// input schema). Unknown expression types contribute nothing.
func ExprRefs(e Expr, fn func(ix int)) {
	switch x := e.(type) {
	case *ColRef:
		fn(x.Ix)
	case *Arith:
		ExprRefs(x.L, fn)
		ExprRefs(x.R, fn)
	case *Cond:
		PredRefs(x.If, fn)
		ExprRefs(x.Then, fn)
		ExprRefs(x.Else, fn)
	}
}

// PredRefs is ExprRefs for predicates.
func PredRefs(p Pred, fn func(ix int)) {
	switch x := p.(type) {
	case *Cmp:
		ExprRefs(x.L, fn)
		ExprRefs(x.R, fn)
	case *And:
		for _, q := range x.Ps {
			PredRefs(q, fn)
		}
	case *Or:
		for _, q := range x.Ps {
			PredRefs(q, fn)
		}
	case *Not:
		PredRefs(x.P, fn)
	case *In:
		ExprRefs(x.E, fn)
	case *Between:
		ExprRefs(x.E, fn)
	}
}

// ---- Aggregates ------------------------------------------------------------

// AggKind enumerates aggregate functions.
type AggKind uint8

const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[k]
}

// AggSpec describes one aggregate output column: a function applied to an
// input expression (nil for COUNT(*)).
type AggSpec struct {
	Kind AggKind
	Arg  Expr // nil allowed for AggCount
	Name string
}

// Signature renders the aggregate spec canonically.
func (a AggSpec) Signature() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.Signature()
	}
	return a.Kind.String() + "(" + arg + ")"
}

// AggState accumulates one aggregate.
type AggState struct {
	spec  AggSpec
	count int64
	sum   float64
	min   tuple.Value
	max   tuple.Value
	seen  bool
}

// NewAggState creates an accumulator for the spec.
func NewAggState(spec AggSpec) *AggState { return &AggState{spec: spec} }

// Add folds one input tuple into the accumulator.
func (s *AggState) Add(t tuple.Tuple) {
	s.count++
	if s.spec.Arg == nil {
		return
	}
	v := s.spec.Arg.Eval(t)
	s.sum += v.AsFloat()
	if !s.seen || tuple.Compare(v, s.min) < 0 {
		s.min = v
	}
	if !s.seen || tuple.Compare(v, s.max) > 0 {
		s.max = v
	}
	s.seen = true
}

// Merge folds another accumulator of the same spec into s (used by the
// parallel aggregate µEngine when multiple workers partition the input).
func (s *AggState) Merge(o *AggState) {
	s.count += o.count
	s.sum += o.sum
	if o.seen {
		if !s.seen || tuple.Compare(o.min, s.min) < 0 {
			s.min = o.min
		}
		if !s.seen || tuple.Compare(o.max, s.max) > 0 {
			s.max = o.max
		}
		s.seen = true
	}
}

// Result returns the aggregate's final value.
func (s *AggState) Result() tuple.Value {
	switch s.spec.Kind {
	case AggCount:
		return tuple.I64(s.count)
	case AggSum:
		return tuple.F64(s.sum)
	case AggAvg:
		if s.count == 0 {
			return tuple.F64(0)
		}
		return tuple.F64(s.sum / float64(s.count))
	case AggMin:
		return s.min
	default:
		return s.max
	}
}
