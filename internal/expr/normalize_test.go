package expr

import (
	"testing"

	"qpipe/internal/tuple"
)

func sig(p Pred) string { return NormalizePred(p).Signature() }

func TestNormalizeCmpOrientation(t *testing.T) {
	// 5 < x  ⇒  x > 5 : column refs sort before constants.
	a := NormalizePred(LT(CInt(5), Col(0)))
	b := NormalizePred(GT(Col(0), CInt(5)))
	if a.Signature() != b.Signature() {
		t.Fatalf("commuted comparisons differ: %q vs %q", a.Signature(), b.Signature())
	}
	if a.Signature() != "(c0>k1:5)" {
		t.Fatalf("unexpected canonical form %q", a.Signature())
	}
}

func TestNormalizeConjunctOrder(t *testing.T) {
	p1 := AndOf(EQ(Col(0), CInt(1)), EQ(Col(1), CInt(2)))
	p2 := AndOf(EQ(CInt(2), Col(1)), EQ(Col(0), CInt(1)))
	if sig(p1) != sig(p2) {
		t.Fatalf("reordered conjunctions differ: %q vs %q", sig(p1), sig(p2))
	}
}

func TestNormalizeConstantFolding(t *testing.T) {
	if _, ok := NormalizePred(EQ(CInt(1), CInt(1))).(True); !ok {
		t.Fatal("1=1 should fold to True")
	}
	if _, ok := NormalizePred(EQ(CInt(1), CInt(2))).(False); !ok {
		t.Fatal("1=2 should fold to False")
	}
	// AND absorbs False, drops True.
	if _, ok := NormalizePred(AndOf(EQ(Col(0), CInt(1)), LT(CInt(2), CInt(1)))).(False); !ok {
		t.Fatal("AND with a false conjunct should fold to False")
	}
	got := NormalizePred(AndOf(EQ(Col(0), CInt(1)), LE(CInt(1), CInt(2))))
	if got.Signature() != "(c0=k1:1)" {
		t.Fatalf("AND with a true conjunct should unwrap, got %q", got.Signature())
	}
	// Arithmetic folding inside an expression.
	e := NormalizeExpr(Add(CInt(2), CInt(3)))
	c, ok := e.(*Const)
	if !ok || c.V.I != 5 {
		t.Fatalf("2+3 should fold to 5, got %v", e.Signature())
	}
}

func TestNormalizeCommutativeArith(t *testing.T) {
	a := NormalizeExpr(Mul(CFloat(1.1), Col(3)))
	b := NormalizeExpr(Mul(Col(3), CFloat(1.1)))
	if a.Signature() != b.Signature() {
		t.Fatalf("commuted products differ: %q vs %q", a.Signature(), b.Signature())
	}
	// Subtraction must NOT commute.
	s1 := NormalizeExpr(Sub(Col(0), Col(1))).Signature()
	s2 := NormalizeExpr(Sub(Col(1), Col(0))).Signature()
	if s1 == s2 {
		t.Fatal("subtraction operands must not be reordered")
	}
}

func TestNormalizeNot(t *testing.T) {
	// NOT (x < 5)  ⇒  x >= 5
	a := NormalizePred(NotOf(LT(Col(0), CInt(5))))
	b := NormalizePred(GE(Col(0), CInt(5)))
	if a.Signature() != b.Signature() {
		t.Fatalf("negated comparison differs: %q vs %q", a.Signature(), b.Signature())
	}
	// Double negation.
	c := NormalizePred(NotOf(NotOf(InOf(Col(0), tuple.I64(1)))))
	d := NormalizePred(InOf(Col(0), tuple.I64(1)))
	if c.Signature() != d.Signature() {
		t.Fatalf("double negation differs: %q vs %q", c.Signature(), d.Signature())
	}
}

func TestNormalizeIn(t *testing.T) {
	a := sig(InOf(Col(0), tuple.I64(3), tuple.I64(1), tuple.I64(3), tuple.I64(2)))
	b := sig(InOf(Col(0), tuple.I64(1), tuple.I64(2), tuple.I64(3)))
	if a != b {
		t.Fatalf("IN lists differ after sort+dedup: %q vs %q", a, b)
	}
	// Singleton folds to equality.
	if sig(InOf(Col(0), tuple.I64(7))) != sig(EQ(Col(0), CInt(7))) {
		t.Fatal("singleton IN should fold to equality")
	}
	if _, ok := NormalizePred(InOf(Col(0))).(False); !ok {
		t.Fatal("empty IN should fold to False")
	}
}

func TestNormalizeBetween(t *testing.T) {
	a := sig(BetweenOf(Col(2), tuple.I64(100), tuple.I64(800)))
	b := sig(AndOf(GE(Col(2), CInt(100)), LE(Col(2), CInt(800))))
	if a != b {
		t.Fatalf("BETWEEN and >=/<= pair differ: %q vs %q", a, b)
	}
}

func TestNormalizePreservesSemantics(t *testing.T) {
	rows := []tuple.Tuple{
		{tuple.I64(1), tuple.F64(10), tuple.Str("a")},
		{tuple.I64(5), tuple.F64(500), tuple.Str("b")},
		{tuple.I64(9), tuple.F64(900), tuple.Str("a")},
	}
	preds := []Pred{
		AndOf(LT(CInt(0), Col(0)), OrOf(EQ(Col(2), CStr("a")), GT(Col(1), CFloat(450)))),
		NotOf(BetweenOf(Col(1), tuple.F64(100), tuple.F64(600))),
		InOf(Col(0), tuple.I64(5), tuple.I64(9), tuple.I64(5)),
		OrOf(EQ(CInt(1), CInt(2)), NE(Col(0), CInt(5))),
	}
	for pi, p := range preds {
		n := NormalizePred(p)
		for ri, r := range rows {
			if p.Test(r) != n.Test(r) {
				t.Fatalf("pred %d row %d: normalization changed semantics (%s vs %s)",
					pi, ri, p.Signature(), n.Signature())
			}
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	p := AndOf(
		BetweenOf(Col(1), tuple.I64(1), tuple.I64(9)),
		OrOf(LT(CInt(3), Col(0)), EQ(Col(2), CStr("x"))),
		NotOf(GE(Col(0), CInt(7))),
	)
	once := NormalizePred(p)
	twice := NormalizePred(once)
	if once.Signature() != twice.Signature() {
		t.Fatalf("normalization not idempotent: %q vs %q", once.Signature(), twice.Signature())
	}
}

func TestShiftPred(t *testing.T) {
	p := AndOf(GT(Col(2), CInt(5)), InOf(Col(3), tuple.I64(1)))
	s := ShiftPred(p, -2)
	want := sig(AndOf(GT(Col(0), CInt(5)), InOf(Col(1), tuple.I64(1))))
	if sig(s) != want {
		t.Fatalf("shift mismatch: %q vs %q", sig(s), want)
	}
	// Original untouched.
	if p.Ps[0].(*Cmp).L.(*ColRef).Ix != 2 {
		t.Fatal("ShiftPred mutated its input")
	}
}
