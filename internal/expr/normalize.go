// Expression canonicalization: rewrites expressions and predicates into a
// normal form so semantically equivalent queries render identical
// Signature() strings. This is what makes OSP sharing an optimizer
// objective — `WHERE a=1 AND b=2` and `WHERE b=2 AND a=1` must hash to the
// same plan signature before the coordinator can ever match them (paper
// §4.3). The rules are purely structural and semantics-preserving:
//
//   - constant folding (both operands constant → evaluate now; Compare is a
//     total preorder over tuple.Value, so folding never traps)
//   - commutative operand ordering for + and * (smaller signature first)
//   - comparison orientation (smaller signature left, operator mirrored),
//     which puts column refs ("c…") before constants ("k…")
//   - conjunct/disjunct flattening, signature-sorting, de-duplication and
//     unit/absorbing-element elimination
//   - NOT pushed through comparisons; double negation dropped
//   - IN lists sorted and de-duplicated; singleton IN → equality
//   - BETWEEN expanded to a >=/<= conjunction so range predicates written
//     either way converge
package expr

import (
	"sort"

	"qpipe/internal/tuple"
)

// False is a predicate that never holds: the absorbing element for AND and
// the unit for OR, produced by constant folding (e.g. WHERE 1 = 2).
type False struct{}

// Test implements Pred.
func (False) Test(tuple.Tuple) bool { return false }

// Signature implements Pred.
func (False) Signature() string { return "false" }

// NormalizeExpr rewrites e into canonical form. The result is a new tree —
// e is never mutated — and evaluates identically on every tuple.
func NormalizeExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Arith:
		l, r := NormalizeExpr(x.L), NormalizeExpr(x.R)
		if isConst(l) && isConst(r) {
			return &Const{V: (&Arith{Op: x.Op, L: l, R: r}).Eval(nil)}
		}
		if (x.Op == OpAdd || x.Op == OpMul) && l.Signature() > r.Signature() {
			l, r = r, l
		}
		return &Arith{Op: x.Op, L: l, R: r}
	case *Cond:
		p := NormalizePred(x.If)
		then, els := NormalizeExpr(x.Then), NormalizeExpr(x.Else)
		switch p.(type) {
		case True:
			return then
		case False:
			return els
		}
		return &Cond{If: p, Then: then, Else: els}
	default:
		// ColRef and Const are already canonical.
		return e
	}
}

// NormalizePred rewrites p into canonical form; like NormalizeExpr it never
// mutates its input and preserves Test() on every tuple.
func NormalizePred(p Pred) Pred {
	switch x := p.(type) {
	case *Cmp:
		return normalizeCmp(x)
	case *And:
		return normalizeNary(x.Ps, true)
	case *Or:
		return normalizeNary(x.Ps, false)
	case *Not:
		return normalizeNot(x)
	case *In:
		return normalizeIn(x)
	case *Between:
		// Expand to a conjunction so `x BETWEEN a AND b` and
		// `x >= a AND x <= b` converge on one signature.
		e := NormalizeExpr(x.E)
		loOp, hiOp := CmpGE, CmpLE
		if x.LoX {
			loOp = CmpGT
		}
		if x.HiX {
			hiOp = CmpLT
		}
		return NormalizePred(AndOf(
			&Cmp{Op: loOp, L: e, R: &Const{V: x.Lo}},
			&Cmp{Op: hiOp, L: e, R: &Const{V: x.Hi}},
		))
	default:
		// True and False are already canonical.
		return p
	}
}

func isConst(e Expr) bool {
	_, ok := e.(*Const)
	return ok
}

// mirror returns the operator with its operands swapped: a < b ⇔ b > a.
func mirror(op CmpOp) CmpOp {
	switch op {
	case CmpLT:
		return CmpGT
	case CmpLE:
		return CmpGE
	case CmpGT:
		return CmpLT
	case CmpGE:
		return CmpLE
	default: // = and <> are symmetric
		return op
	}
}

// negate returns the complement operator: NOT (a < b) ⇔ a >= b. Safe
// because tuple.Compare is a total preorder (no NULL/NaN trichotomy gaps).
func negate(op CmpOp) CmpOp {
	switch op {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	default:
		return CmpLT
	}
}

func normalizeCmp(x *Cmp) Pred {
	l, r := NormalizeExpr(x.L), NormalizeExpr(x.R)
	op := x.Op
	if isConst(l) && isConst(r) {
		if (&Cmp{Op: op, L: l, R: r}).Test(nil) {
			return True{}
		}
		return False{}
	}
	ls, rs := l.Signature(), r.Signature()
	if ls == rs {
		// x = x, x <= x, x >= x always hold; x <> x, x < x, x > x never do.
		switch op {
		case CmpEQ, CmpLE, CmpGE:
			return True{}
		default:
			return False{}
		}
	}
	if ls > rs {
		l, r = r, l
		op = mirror(op)
	}
	return &Cmp{Op: op, L: l, R: r}
}

// normalizeNary canonicalizes a conjunction (conj=true) or disjunction:
// children normalized, same-connective children flattened in, units
// dropped, absorbing elements short-circuited, then sorted by signature and
// de-duplicated. Singleton lists unwrap; empty lists fold to the unit.
func normalizeNary(ps []Pred, conj bool) Pred {
	var flat []Pred
	var add func(p Pred)
	add = func(p Pred) {
		switch q := p.(type) {
		case *And:
			if conj {
				for _, c := range q.Ps {
					add(c)
				}
				return
			}
		case *Or:
			if !conj {
				for _, c := range q.Ps {
					add(c)
				}
				return
			}
		}
		flat = append(flat, p)
	}
	for _, p := range ps {
		add(NormalizePred(p))
	}

	kept := flat[:0]
	for _, p := range flat {
		switch p.(type) {
		case True:
			if conj {
				continue // unit of AND
			}
			return True{} // absorbing element of OR
		case False:
			if conj {
				return False{} // absorbing element of AND
			}
			continue // unit of OR
		}
		kept = append(kept, p)
	}

	sort.SliceStable(kept, func(i, j int) bool {
		return kept[i].Signature() < kept[j].Signature()
	})
	dedup := kept[:0]
	for i, p := range kept {
		if i > 0 && p.Signature() == kept[i-1].Signature() {
			continue
		}
		dedup = append(dedup, p)
	}

	switch len(dedup) {
	case 0:
		if conj {
			return True{}
		}
		return False{}
	case 1:
		return dedup[0]
	}
	out := make([]Pred, len(dedup))
	copy(out, dedup)
	if conj {
		return &And{Ps: out}
	}
	return &Or{Ps: out}
}

func normalizeNot(x *Not) Pred {
	inner := NormalizePred(x.P)
	switch q := inner.(type) {
	case True:
		return False{}
	case False:
		return True{}
	case *Not:
		return q.P // inner is normalized already
	case *Cmp:
		return normalizeCmp(&Cmp{Op: negate(q.Op), L: q.L, R: q.R})
	}
	return &Not{P: inner}
}

func normalizeIn(x *In) Pred {
	e := NormalizeExpr(x.E)
	vals := make([]tuple.Value, len(x.Vals))
	copy(vals, x.Vals)
	sort.SliceStable(vals, func(i, j int) bool {
		c := tuple.Compare(vals[i], vals[j])
		if c != 0 {
			return c < 0
		}
		return vals[i].String() < vals[j].String()
	})
	// De-duplicate under tuple.Equal: In's Test uses the same relation, so
	// dropping Compare-equal values (e.g. 1 and 1.0) preserves semantics.
	dedup := vals[:0]
	for i, v := range vals {
		if i > 0 && tuple.Equal(v, vals[i-1]) {
			continue
		}
		dedup = append(dedup, v)
	}
	switch len(dedup) {
	case 0:
		return False{}
	case 1:
		return normalizeCmp(&Cmp{Op: CmpEQ, L: e, R: &Const{V: dedup[0]}})
	}
	return &In{E: e, Vals: dedup}
}

// ShiftExpr rebuilds e with every column reference offset by delta; used by
// the plan normalizer when a predicate moves below a join and must be
// re-based onto the join's right input. The input is not mutated.
func ShiftExpr(e Expr, delta int) Expr {
	if delta == 0 {
		return e
	}
	switch x := e.(type) {
	case *ColRef:
		return &ColRef{Ix: x.Ix + delta, Name: x.Name}
	case *Arith:
		return &Arith{Op: x.Op, L: ShiftExpr(x.L, delta), R: ShiftExpr(x.R, delta)}
	case *Cond:
		return &Cond{If: ShiftPred(x.If, delta), Then: ShiftExpr(x.Then, delta), Else: ShiftExpr(x.Else, delta)}
	default:
		return e
	}
}

// ShiftPred is ShiftExpr for predicates.
func ShiftPred(p Pred, delta int) Pred {
	if delta == 0 {
		return p
	}
	switch x := p.(type) {
	case *Cmp:
		return &Cmp{Op: x.Op, L: ShiftExpr(x.L, delta), R: ShiftExpr(x.R, delta)}
	case *And:
		ps := make([]Pred, len(x.Ps))
		for i, q := range x.Ps {
			ps[i] = ShiftPred(q, delta)
		}
		return &And{Ps: ps}
	case *Or:
		ps := make([]Pred, len(x.Ps))
		for i, q := range x.Ps {
			ps[i] = ShiftPred(q, delta)
		}
		return &Or{Ps: ps}
	case *Not:
		return &Not{P: ShiftPred(x.P, delta)}
	case *In:
		return &In{E: ShiftExpr(x.E, delta), Vals: x.Vals}
	case *Between:
		return &Between{E: ShiftExpr(x.E, delta), Lo: x.Lo, Hi: x.Hi, LoX: x.LoX, HiX: x.HiX}
	default:
		return p
	}
}
