package lint

import (
	"go/token"
	"strings"
	"testing"
)

// applyOn parses src as a single-file package and filters diags through its
// directives with the real analyzer set.
func applyOn(t *testing.T, src string, diags []Diagnostic) []Diagnostic {
	t.Helper()
	pkg := mustParse(t, "p.go", src)
	return ApplyDirectives([]*Package{pkg}, diags, All())
}

func diagAt(file string, line int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestDirectiveSuppressesTrailing(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignore leaselint handoff happens in the caller
}
`
	out := applyOn(t, src, []Diagnostic{diagAt("p.go", 4, "leaselint", "batch leaks")})
	if len(out) != 0 {
		t.Fatalf("trailing directive did not suppress: %v", out)
	}
}

func TestDirectiveSuppressesNextLine(t *testing.T) {
	src := `package p

func f() {
	//qpipelint:ignore emitlint error is re-checked by the result collector
	_ = 1
}
`
	out := applyOn(t, src, []Diagnostic{diagAt("p.go", 5, "emitlint", "error discarded")})
	if len(out) != 0 {
		t.Fatalf("standalone directive did not suppress the next line: %v", out)
	}
}

func TestDirectiveOnlyNamedAnalyzer(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignore leaselint reason here
}
`
	keep := diagAt("p.go", 4, "emitlint", "error discarded")
	out := applyOn(t, src, []Diagnostic{keep})
	if len(out) != 1 || out[0].Analyzer != "emitlint" {
		t.Fatalf("directive for leaselint suppressed an emitlint diagnostic: %v", out)
	}
}

func TestDirectiveWrongLineDoesNotSuppress(t *testing.T) {
	src := `package p

//qpipelint:ignore leaselint reason here

func f() {
	_ = 1
}
`
	keep := diagAt("p.go", 6, "leaselint", "batch leaks")
	out := applyOn(t, src, []Diagnostic{keep})
	if len(out) != 1 {
		t.Fatalf("directive three lines away suppressed a diagnostic: %v", out)
	}
}

func TestDirectiveTrailingDoesNotBleedToNextLine(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignore leaselint covers this line only
	_ = 2
}
`
	keep := diagAt("p.go", 5, "leaselint", "batch leaks")
	out := applyOn(t, src, []Diagnostic{keep})
	if len(out) != 1 {
		t.Fatalf("trailing directive suppressed the following line too: %v", out)
	}
}

func TestDirectiveUnknownAnalyzer(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignore leaslint typo in the analyzer name
}
`
	victim := diagAt("p.go", 4, "leaselint", "batch leaks")
	out := applyOn(t, src, []Diagnostic{victim})
	if len(out) != 2 {
		t.Fatalf("want malformed-directive diagnostic plus the unsuppressed original, got %v", out)
	}
	var sawMalformed, sawOriginal bool
	for _, d := range out {
		if d.Analyzer == "qpipelint" && strings.Contains(d.Message, `unknown analyzer "leaslint"`) &&
			strings.Contains(d.Message, "known:") {
			sawMalformed = true
		}
		if d.Analyzer == "leaselint" {
			sawOriginal = true
		}
	}
	if !sawMalformed || !sawOriginal {
		t.Fatalf("unknown-analyzer directive must report itself and suppress nothing: %v", out)
	}
}

func TestDirectiveMissingReason(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignore leaselint
}
`
	out := applyOn(t, src, nil)
	if len(out) != 1 || out[0].Analyzer != "qpipelint" || !strings.Contains(out[0].Message, "missing reason") {
		t.Fatalf("reason-less directive must produce a qpipelint diagnostic, got %v", out)
	}
}

func TestDirectiveMissingEverything(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignore
}
`
	out := applyOn(t, src, nil)
	if len(out) != 1 || out[0].Analyzer != "qpipelint" ||
		!strings.Contains(out[0].Message, "missing analyzer name and reason") {
		t.Fatalf("bare directive must produce a qpipelint diagnostic, got %v", out)
	}
}

func TestDirectiveMultipleAnalyzers(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignore leaselint,emitlint shared ownership documented above
}
`
	diags := []Diagnostic{
		diagAt("p.go", 4, "leaselint", "batch leaks"),
		diagAt("p.go", 4, "emitlint", "error discarded"),
		diagAt("p.go", 4, "spilllint", "temp leaks"),
	}
	out := applyOn(t, src, diags)
	if len(out) != 1 || out[0].Analyzer != "spilllint" {
		t.Fatalf("comma list must suppress exactly the named analyzers: %v", out)
	}
}

func TestDirectiveLookalikeIgnored(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //qpipelint:ignoreall not a real directive
}
`
	keep := diagAt("p.go", 4, "leaselint", "batch leaks")
	out := applyOn(t, src, []Diagnostic{keep})
	if len(out) != 1 || out[0].Analyzer != "leaselint" {
		t.Fatalf("lookalike comment must neither suppress nor report: %v", out)
	}
}

func TestByName(t *testing.T) {
	sel, unknown, ok := ByName([]string{"leaselint", "ctxlint"})
	if !ok || unknown != "" || len(sel) != 2 {
		t.Fatalf("ByName(leaselint,ctxlint) = %v, %q, %v", sel, unknown, ok)
	}
	_, unknown, ok = ByName([]string{"leaselint", "nosuch"})
	if ok || unknown != "nosuch" {
		t.Fatalf("ByName must surface unknown names, got %q %v", unknown, ok)
	}
}
