// Package loading without golang.org/x/tools/go/packages: module packages
// are enumerated with `go list -json`, type-checked from source in
// dependency order with one shared FileSet (so types.Object identities are
// stable across packages and can carry analyzer facts), and standard-library
// imports are satisfied from build-cache export data located with
// `go list -export`. Works fully offline.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path      string
	Name      string
	Dir       string
	Files     []*ast.File
	Fset      *token.FileSet
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string
}

// loader resolves imports either from in-module source directories or from
// gc export data, caching both. One loader (and one FileSet) serves a whole
// Load call so object identities are consistent.
type loader struct {
	fset *token.FileSet
	// src maps import path -> source package metadata for packages
	// type-checked from source (module packages, or testdata fakes).
	src map[string]*listedPackage
	// exportFiles maps import path -> export data file for gc imports.
	exportFiles map[string]string
	// done caches fully type-checked packages by import path.
	done map[string]*Package
	// gc imports stdlib packages from export data; it keeps its own cache
	// keyed by path so identities are shared across all source packages.
	gc types.Importer
	// loading guards against import cycles in source packages.
	loading map[string]bool
}

func newLoader() *loader {
	l := &loader{
		fset:        token.NewFileSet(),
		src:         map[string]*listedPackage{},
		exportFiles: map[string]string{},
		done:        map[string]*Package{},
		loading:     map[string]bool{},
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l
}

// lookupExport feeds the gc importer the export data file for path,
// resolving through `go list -export` (cached) when the batch prefetch did
// not already know it.
func (l *loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exportFiles[path]
	if !ok || file == "" {
		out, err := runGo("", "list", "-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, fmt.Errorf("lint: no export data for %q: %w", path, err)
		}
		file = strings.TrimSpace(out)
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		l.exportFiles[path] = file
	}
	return os.Open(file)
}

// Import implements types.Importer over the loader's two sources.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.done[path]; ok {
		return pkg.Types, nil
	}
	if meta, ok := l.src[path]; ok {
		pkg, err := l.check(meta)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// check parses and type-checks one source package (recursively resolving
// its imports through the loader) and caches the result.
func (l *loader) check(meta *listedPackage) (*Package, error) {
	if pkg, ok := l.done[meta.ImportPath]; ok {
		return pkg, nil
	}
	if l.loading[meta.ImportPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", meta.ImportPath)
	}
	l.loading[meta.ImportPath] = true
	defer delete(l.loading, meta.ImportPath)

	var files []*ast.File
	for _, name := range meta.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(meta.Dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: l}
	tpkg, err := conf.Check(meta.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", meta.ImportPath, err)
	}
	pkg := &Package{
		Path:      meta.ImportPath,
		Name:      tpkg.Name(),
		Dir:       meta.Dir,
		Files:     files,
		Fset:      l.fset,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.done[meta.ImportPath] = pkg
	return pkg, nil
}

// Load enumerates the packages matching patterns in the module rooted at
// (or containing) dir, type-checks them and their in-module dependencies
// from source, and returns the packages matching the patterns in dependency
// order (imports before importers). Test files are not loaded; the
// invariants qpipe-lint enforces live in engine code proper.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	for _, t := range targets {
		isTarget[t.ImportPath] = true
	}

	l := newLoader()
	// `go list -deps` emits dependencies before dependents; remember that
	// order for the result, and pre-register every package with its source
	// or export-data location.
	var order []string
	for _, m := range metas {
		if m.Standard {
			if m.Export != "" {
				l.exportFiles[m.ImportPath] = m.Export
			}
			continue
		}
		l.src[m.ImportPath] = m
		order = append(order, m.ImportPath)
	}

	var pkgs []*Package
	for _, path := range order {
		pkg, err := l.check(l.src[path])
		if err != nil {
			return nil, err
		}
		if isTarget[path] {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadFromSrcDir loads the packages at import paths pkgpaths whose source
// trees live under srcdir (GOPATH style: srcdir/<pkgpath>/*.go), resolving
// non-stdlib imports from sibling directories under srcdir. All packages
// share one loader and FileSet, so analyzer facts flow between them exactly
// as in a real run. This is how the analysistest runner loads testdata
// packages without a go.mod.
func LoadFromSrcDir(srcdir string, pkgpaths ...string) ([]*Package, error) {
	l := newLoader()
	if err := l.registerSrcTree(srcdir); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, pkgpath := range pkgpaths {
		meta, ok := l.src[pkgpath]
		if !ok {
			return nil, fmt.Errorf("lint: no package %q under %s", pkgpath, srcdir)
		}
		pkg, err := l.check(meta)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// registerSrcTree walks srcdir registering every directory containing .go
// files as a source package whose import path is its srcdir-relative path.
func (l *loader) registerSrcTree(srcdir string) error {
	return filepath.Walk(srcdir, func(path string, info os.FileInfo, err error) error {
		if err != nil || !info.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var goFiles []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				goFiles = append(goFiles, e.Name())
			}
		}
		if len(goFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(srcdir, path)
		if err != nil {
			return err
		}
		importPath := filepath.ToSlash(rel)
		l.src[importPath] = &listedPackage{
			ImportPath: importPath,
			Dir:        path,
			GoFiles:    goFiles,
		}
		return nil
	})
}

// goList runs `go list -json` with args in dir and decodes the package
// stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	out, err := runGo(dir, append([]string{"list", "-e", "-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,Export"}, args...)...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var metas []*listedPackage
	for dec.More() {
		m := &listedPackage{}
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

func runGo(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), nil
}
