// deadlinelint enforces packet-context derivation: code holding a
// *core.Packet or *core.Query runs on behalf of a governed query whose
// deadline and cancellation live in the query context (Query.Ctx, reached
// from a packet as pkt.Query.Ctx()). A function that manufactures its own
// root context — context.Background() or context.TODO() — while carrying
// query state detaches that work from the query's deadline: a statement
// timeout or client cancel would tear the buffers down while the detached
// work runs on, exactly the hang-or-leak the governance layer exists to
// prevent.

package lint

import (
	"go/ast"
	"go/types"
)

// DeadlineLint is the packet-context derivation analyzer.
var DeadlineLint = &Analyzer{
	Name: "deadlinelint",
	Doc: "check that functions holding query state (*core.Packet / *core.Query) derive " +
		"contexts from the query context instead of creating context.Background()/context.TODO(), " +
		"so per-query deadlines and cancellation reach every piece of the query's work",
	Run: runDeadlineLint,
}

func runDeadlineLint(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !carriesQueryState(pass.TypesInfo, decl) {
				continue
			}
			// The whole body counts, nested literals included: a closure
			// inside a packet-carrying function still works for that query.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Reportf(call.Pos(),
						"%s holds query state but creates context.%s(): packet work must derive from the query context (pkt.Query.Ctx) so deadlines and cancellation reach it",
						decl.Name.Name, fn.Name())
				}
				return true
			})
		}
	}
	return nil
}

// carriesQueryState reports whether the function's receiver or any
// parameter is a *core.Packet or *core.Query (engine package or testdata
// stand-in).
func carriesQueryState(info *types.Info, decl *ast.FuncDecl) bool {
	var fields []*ast.Field
	if decl.Recv != nil {
		fields = append(fields, decl.Recv.List...)
	}
	if decl.Type.Params != nil {
		fields = append(fields, decl.Type.Params.List...)
	}
	for _, field := range fields {
		if isQueryStateType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isQueryStateType matches core.Packet and core.Query, through pointers.
func isQueryStateType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return (obj.Name() == "Packet" || obj.Name() == "Query") && pkgMatches(obj.Pkg(), corePath)
}
