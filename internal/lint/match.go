// Type-resolution helpers shared by the analyzers. Engine packages are
// matched by canonical import path, with testdata stand-ins accepted by
// base name ("tbuf" stands in for "qpipe/internal/core/tbuf") so the
// analysistest suites can model the engine API with tiny fake packages.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Canonical import paths of the engine packages the analyzers know about.
const (
	tbufPath = "qpipe/internal/core/tbuf"
	corePath = "qpipe/internal/core"
	planPath = "qpipe/internal/plan"
)

// pkgMatches reports whether pkg is the engine package with canonical path
// full, or a testdata stand-in sharing its base name.
func pkgMatches(pkg *types.Package, full string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if path == full {
		return true
	}
	base := full[strings.LastIndex(full, "/")+1:]
	return path == base || strings.HasSuffix(path, "/"+base)
}

// calleeFunc resolves the static callee of call, for both plain calls and
// method calls. Returns nil for builtins, function-typed variables and
// dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if obj, ok := info.Uses[id].(*types.Func); ok {
		return obj
	}
	return nil
}

// recvTypeName returns the receiver's named-type name for a method, with
// pointers dereferenced; empty for non-methods.
func recvTypeName(fn *types.Func) (pkg *types.Package, name string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	return named.Obj().Pkg(), named.Obj().Name()
}

// isMethodCall reports whether call invokes one of methods on pkgFull's
// type typeName (engine package or testdata stand-in).
func isMethodCall(info *types.Info, call *ast.CallExpr, pkgFull, typeName string, methods ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	recvPkg, recvName := recvTypeName(fn)
	if recvName != typeName || !pkgMatches(recvPkg, pkgFull) {
		return false
	}
	for _, m := range methods {
		if fn.Name() == m {
			return true
		}
	}
	return false
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// funcBodies collects every function body in the file — declarations and
// literals — paired with a printable name for diagnostics.
type funcBody struct {
	name string
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

func fileFuncBodies(f *ast.File) []funcBody {
	var bodies []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				bodies = append(bodies, funcBody{name: x.Name.Name, body: x.Body, decl: x})
			}
		case *ast.FuncLit:
			bodies = append(bodies, funcBody{name: "func literal", body: x.Body})
		}
		return true
	})
	return bodies
}

// parentMap maps every node in f to its parent, for analyses that need
// enclosing-statement context.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc climbs parents from n to the nearest enclosing function
// body (declaration or literal), returning its body.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = parents[cur] {
		switch x := cur.(type) {
		case *ast.FuncDecl:
			return x.Body
		case *ast.FuncLit:
			return x.Body
		}
	}
	return nil
}
