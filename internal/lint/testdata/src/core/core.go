// Package core is the analysistest stand-in for qpipe/internal/core.
package core

// MicroEngine mirrors the engine type whose SpawnSub spawns sub-workers.
type MicroEngine struct{}

// SpawnSub runs fn as a sub-worker goroutine.
func (e *MicroEngine) SpawnSub(fn func()) { go fn() }

// Query mirrors the engine's per-request handle (deadlinelint).
type Query struct{}

// Packet mirrors the engine's unit of work (deadlinelint).
type Packet struct{ Query *Query }
