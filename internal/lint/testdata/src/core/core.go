// Package core is the analysistest stand-in for qpipe/internal/core.
package core

// MicroEngine mirrors the engine type whose SpawnSub spawns sub-workers.
type MicroEngine struct{}

// SpawnSub runs fn as a sub-worker goroutine.
func (e *MicroEngine) SpawnSub(fn func()) { go fn() }
