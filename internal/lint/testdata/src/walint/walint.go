// Test cases for walint, outside-the-storage-manager half: no package but
// sm may touch heap pages at all, apply-shaped or not.
package walint

import (
	"heap"
)

// updateOp models an operator that shortcuts the update µEngine and writes
// the page directly — even a function named like the sanctioned applier
// fires outside sm.
func applyTable(f *heap.File, rid heap.RID, row []byte) error {
	if err := f.DeleteAt(rid); err != nil { // want `outside the storage manager`
		return err
	}
	_, err := f.Append(row) // want `outside the storage manager`
	return err
}

// inspect only reads; clean.
func inspect(f *heap.File, rid heap.RID) ([]byte, error) {
	return f.ReadTuple(rid)
}
