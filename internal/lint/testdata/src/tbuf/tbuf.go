// Package tbuf is the analysistest stand-in for qpipe/internal/core/tbuf:
// same type and method names, no behavior.
package tbuf

import (
	"errors"

	"tuple"
)

// Batch mirrors the engine's leased batch array.
type Batch = []tuple.Tuple

// ErrConsumersGone mirrors the clean-early-stop sentinel.
var ErrConsumersGone = errors.New("tbuf: all consumers gone")

// ErrAbandoned mirrors the abandoned-consumer error.
var ErrAbandoned = errors.New("tbuf: consumer abandoned buffer")

// BatchPool mirrors the runtime batch pool.
type BatchPool struct{ size int }

func (p *BatchPool) Get() Batch         { return nil }
func (p *BatchPool) GetCap(n int) Batch { return make(Batch, 0, n) }
func (p *BatchPool) Put(b Batch)        {}

// Buffer mirrors the bounded producer/consumer queue.
type Buffer struct{ pool *BatchPool }

func (b *Buffer) Get() (Batch, error)   { return nil, nil }
func (b *Buffer) Put(batch Batch) error { return nil }
func (b *Buffer) Recycle(batch Batch)   {}

// SharedOut mirrors the fan-out output port.
type SharedOut struct{ pool *BatchPool }

func (s *SharedOut) NewBatch(n int) Batch  { return make(Batch, 0, n) }
func (s *SharedOut) Put(batch Batch) error { return nil }
