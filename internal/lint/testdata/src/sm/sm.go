// Test cases for walint, storage-manager half: inside sm, heap mutators
// are legal only in the allowlisted apply functions.
package sm

import (
	"heap"
)

type txTable struct {
	f       *heap.File
	inserts [][]byte
	deletes []heap.RID
}

type Manager struct{ wal *int }

// applyTable is the sanctioned applier: called after the commit batch is
// durable. Every mutator here is clean, including ones inside closures.
func (m *Manager) applyTable(tt *txTable) error {
	for _, rid := range tt.deletes {
		if err := tt.f.DeleteAt(rid); err != nil {
			return err
		}
	}
	apply := func(row []byte) error {
		_, err := tt.f.Append(row)
		return err
	}
	for _, row := range tt.inserts {
		if err := apply(row); err != nil {
			return err
		}
	}
	return tt.f.ReplaceAt(heap.RID{}, nil) // still inside applyTable
}

// Load's direct arm is the documented no-WAL fallback.
func (m *Manager) Load(f *heap.File, rows [][]byte) error {
	for _, r := range rows {
		if _, err := f.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// fastInsert is the bug class: a convenience helper that touches the page
// without any logged transaction behind it.
func (m *Manager) fastInsert(f *heap.File, row []byte) error {
	_, err := f.Append(row) // want `outside the WAL apply path`
	return err
}

// compact rewrites pages in place outside the apply path.
func (m *Manager) compact(f *heap.File, rids []heap.RID) error {
	for _, rid := range rids {
		if err := f.DeleteAt(rid); err != nil { // want `outside the WAL apply path`
			return err
		}
	}
	return nil
}

// readOnly never mutates: reads are not the analyzer's business.
func (m *Manager) readOnly(f *heap.File, rid heap.RID) ([]byte, error) {
	return f.ReadTuple(rid)
}
