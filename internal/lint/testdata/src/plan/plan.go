// Test cases for siglint, in-package half: the plan stand-in with hint
// fields, signature methods, and helpers of both kinds.
package plan

// Scan is a plan node with identity fields and per-query hint fields.
type Scan struct {
	Table       string
	Parallelism int
	BatchSize   int
}

// Signature is hint-pure: identity fields only.
func (s *Scan) Signature() string { return "scan(" + s.Table + ")" }

// WithParallelism writes a hint field; writes are not reads and stay clean.
func (s *Scan) WithParallelism(n int) *Scan {
	s.Parallelism = n
	return s
}

// hintOf reads a hint field. Not an entry point itself, but it taints every
// signature that calls it.
func hintOf(s *Scan) int { return s.Parallelism }

// HintedWidth is an exported tainted helper: the taint travels to other
// packages as an analyzer fact.
func HintedWidth(s *Scan) int { return s.BatchSize * 8 }

// BadScan reads a hint field directly inside its Signature.
type BadScan struct {
	Table       string
	Parallelism int
}

func (s *BadScan) Signature() string { // want `BadScan.Signature must be hint-pure .* reads plan hint field Parallelism`
	if s.Parallelism > 1 {
		return s.Table + "!"
	}
	return s.Table
}

// ChainScan reaches a hint read through an in-package helper.
type ChainScan struct{ S *Scan }

func (c *ChainScan) Signature() string { // want `ChainScan.Signature must be hint-pure .* reads plan hint field Parallelism via hintOf`
	if hintOf(c.S) > 0 {
		return "par"
	}
	return "seq"
}

// Normalize is part of the normalization pipeline and must be hint-pure
// too; this one peeks at BatchSize.
func Normalize(s *Scan) *Scan { // want `Normalize must be hint-pure .* reads plan hint field BatchSize`
	if s.BatchSize > 0 {
		return s
	}
	return s
}

// NormalizeName is hint-pure normalization: identity fields only.
func NormalizeName(s *Scan) *Scan {
	if s.Table == "" {
		s.Table = "?"
	}
	return s
}
