// Test cases for siglint, cross-package half: taint imported through
// analyzer facts from the plan stand-in.
package siguser

import (
	"plan"
)

// Wrapper reaches a hint read only through plan.HintedWidth — the taint
// arrives as a fact exported when the plan package was analyzed.
type Wrapper struct{ S *plan.Scan }

func (w *Wrapper) Signature() string { // want `Wrapper.Signature must be hint-pure .* reads plan hint field BatchSize via HintedWidth`
	if plan.HintedWidth(w.S) > 64 {
		return "wide"
	}
	return "narrow"
}

// Explain reads a hint field directly but is not part of the signature /
// normalization surface: reading hints to display them is exactly what
// EXPLAIN should do.
func Explain(s *plan.Scan) int { return s.Parallelism }

// CleanWrapper renders identity only.
type CleanWrapper struct{ S *plan.Scan }

func (w *CleanWrapper) Signature() string { return w.S.Signature() }
