// Test cases for leaselint: batch lease handoff and published-row
// immutability.
package leaselint

import (
	"tbuf"
	"tuple"
)

// useAfterPut: straight-line use of a batch after its lease was handed to
// SharedOut.Put.
func useAfterPut(out *tbuf.SharedOut) {
	b := out.NewBatch(4)
	b = append(b, tuple.Tuple{{I: 1}})
	_ = out.Put(b)
	b = append(b, tuple.Tuple{{I: 2}}) // want `batch b used after its lease was handed off by SharedOut.Put`
	_ = b
}

// doublePut: the second Put hands off a lease the function no longer holds.
func doublePut(out *tbuf.SharedOut, pool *tbuf.BatchPool) {
	b := pool.Get()
	_ = out.Put(b)
	_ = out.Put(b) // want `batch b used after its lease was handed off by SharedOut.Put`
}

// useAfterIfInitPut: handoff inside an if-init statement still consumes the
// lease for the code after the if.
func useAfterIfInitPut(out *tbuf.SharedOut) error {
	b := out.NewBatch(2)
	if err := out.Put(b); err != nil {
		return err
	}
	return recycleUse(b) // want `batch b used after its lease was handed off by SharedOut.Put`
}

func recycleUse(b tbuf.Batch) error { return nil }

// leak: a leased batch that never reaches a handoff and never escapes.
func leak(pool *tbuf.BatchPool) {
	b := pool.GetCap(8) // want `the array lease leaks`
	b = append(b, tuple.Tuple{{I: 3}})
}

// mutatePublished: rows drawn from a consumer-side Buffer.Get are shared by
// reference and must not be written.
func mutatePublished(buf *tbuf.Buffer) error {
	batch, err := buf.Get()
	if err != nil {
		return err
	}
	t := batch[0]
	t[0] = tuple.Value{I: 9} // want `rows are immutable once published`
	buf.Recycle(batch)
	return nil
}

// mutatePublishedDeep: writing through a nested index or a field of a row
// is the same violation.
func mutatePublishedDeep(buf *tbuf.Buffer) error {
	batch, err := buf.Get()
	if err != nil {
		return err
	}
	batch[0][1] = tuple.Value{I: 7} // want `rows are immutable once published`
	buf.Recycle(batch)
	return nil
}

// mutateRangeRow: range values over a consumer batch are published rows too.
func mutateRangeRow(buf *tbuf.Buffer) error {
	batch, err := buf.Get()
	if err != nil {
		return err
	}
	for _, t := range batch {
		t[0].I = 42 // want `rows are immutable once published`
	}
	buf.Recycle(batch)
	return nil
}

// cleanEmit: draw, fill, hand off once — the canonical producer loop body.
func cleanEmit(out *tbuf.SharedOut) error {
	b := out.NewBatch(4)
	for i := 0; i < 4; i++ {
		b = append(b, tuple.Tuple{{I: int64(i)}})
	}
	return out.Put(b)
}

// cleanRecycle: the canonical consumer loop body — read rows, recycle the
// batch, never touch it again.
func cleanRecycle(buf *tbuf.Buffer) (int64, error) {
	batch, err := buf.Get()
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, t := range batch {
		sum += t[0].I
	}
	buf.Recycle(batch)
	return sum, nil
}

// cleanPassOn: handing the batch to another function transfers the lease
// with it; the callee owns the handoff.
func cleanPassOn(pool *tbuf.BatchPool, sink func(tbuf.Batch) error) error {
	b := pool.Get()
	b = append(b, tuple.Tuple{{I: 5}})
	return sink(b)
}

// cleanDeferRecycle: a deferred handoff covers the lease for the whole
// function body.
func cleanDeferRecycle(buf *tbuf.Buffer) (int, error) {
	batch, err := buf.Get()
	if err != nil {
		return 0, err
	}
	defer buf.Recycle(batch)
	return len(batch), nil
}

// holder owns batches stored into it and recycles them later.
type holder struct {
	b tbuf.Batch
	i int
}

// cleanStoreToField: storing the drawn batch into a struct field transfers
// the lease to the destination's owner (the cursor idiom: c.batch, c.i =
// b, 0, recycled by a later release()).
func cleanStoreToField(h *holder, buf *tbuf.Buffer) error {
	b, err := buf.Get()
	if err != nil {
		return err
	}
	h.b, h.i = b, 0
	return nil
}

// cleanBranchyHandoff: a handoff on one branch demotes the lease to
// unknown, so the later use is not flagged (conservative, not unsound: the
// analyzer only reports definite violations).
func cleanBranchyHandoff(out *tbuf.SharedOut, flush bool) tbuf.Batch {
	b := out.NewBatch(1)
	if flush {
		_ = out.Put(b)
		b = nil
	}
	return b
}
