// Test cases for ctxlint: context threading into µEngine sub-workers.
package ctxlint

import (
	"context"

	"core"
)

// badBackground: a sub-worker manufacturing its own root context detaches
// from query cancellation.
func badBackground(e *core.MicroEngine) {
	e.SpawnSub(func() {
		ctx := context.Background() // want `sub-worker creates context.Background`
		_ = ctx
	})
}

// badTODO: context.TODO is the same detachment with a different name.
func badTODO(e *core.MicroEngine) {
	e.SpawnSub(func() {
		_ = context.TODO() // want `sub-worker creates context.TODO`
	})
}

// badSpawnerHook: the func(func()) spawner hooks the parallel helpers
// thread around are spawn points too.
func badSpawnerHook(spawn func(func())) {
	spawn(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 0) // want `sub-worker creates context.Background`
		defer cancel()
		<-ctx.Done()
	})
}

// cleanThreaded: the sub-worker derives everything from the packet's
// context captured from the enclosing scope.
func cleanThreaded(e *core.MicroEngine, ctx context.Context) {
	e.SpawnSub(func() {
		sub, cancel := context.WithCancel(ctx)
		defer cancel()
		<-sub.Done()
	})
}

// cleanNonSpawn: creating a root context outside any spawned closure is
// not this analyzer's business (main() and tests do it legitimately).
func cleanNonSpawn() context.Context {
	return context.Background()
}
