// Stand-in for qpipe/internal/storage/heap: just enough surface for the
// walint test cases (matched by package base name and type/method names).
package heap

// RID addresses a tuple.
type RID struct {
	Page int64
	Slot int
}

// File is a heap file of slotted pages.
type File struct{}

// Append adds a tuple, returning its RID.
func (f *File) Append(row []byte) (RID, error) { return RID{}, nil }

// ReplaceAt overwrites the tuple at rid in place.
func (f *File) ReplaceAt(rid RID, row []byte) error { return nil }

// DeleteAt tombstones the tuple at rid.
func (f *File) DeleteAt(rid RID) error { return nil }

// ReadTuple reads the tuple at rid (not a mutator; walint ignores it).
func (f *File) ReadTuple(rid RID) ([]byte, error) { return nil, nil }
