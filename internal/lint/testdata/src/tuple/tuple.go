// Package tuple is the analysistest stand-in for qpipe/internal/tuple.
package tuple

// Value is a minimal stand-in for the engine's tagged-union value.
type Value struct{ I int64 }

// Tuple is a flat row of values, immutable once published.
type Tuple []Value
