// Test cases for emitlint: Put error checking and ErrConsumersGone
// sentinel discipline.
package emitlint

import (
	"errors"

	"tbuf"
)

// discard: Put as a bare expression statement drops the error.
func discard(out *tbuf.SharedOut, b tbuf.Batch) {
	out.Put(b) // want `SharedOut.Put error discarded`
}

// discardBuffer: same for the producer-side buffer port.
func discardBuffer(buf *tbuf.Buffer, b tbuf.Batch) {
	buf.Put(b) // want `Buffer.Put error discarded`
}

// blank: assigning to the blank identifier is a discard with extra steps.
func blank(out *tbuf.SharedOut, b tbuf.Batch) {
	_ = out.Put(b) // want `SharedOut.Put error assigned to blank`
}

// nilCompare: a raw nil-comparison cannot separate the clean-stop sentinel
// from a hard failure.
func nilCompare(out *tbuf.SharedOut, b tbuf.Batch) bool {
	return out.Put(b) != nil // want `reduced to a nil-comparison`
}

// localCollapse: the error is consumed entirely inside the function without
// ever naming tbuf.ErrConsumersGone — a clean early stop reads as failure.
func localCollapse(out *tbuf.SharedOut, b tbuf.Batch) bool {
	err := out.Put(b) // want `consumed locally without distinguishing tbuf.ErrConsumersGone`
	if err != nil {
		return false
	}
	return true
}

// deferredDiscard: defer drops the call's results.
func deferredDiscard(out *tbuf.SharedOut, b tbuf.Batch) {
	defer out.Put(b) // want `SharedOut.Put error discarded \(deferred/async`
}

// cleanSentinel: the canonical emit idiom — check the error and treat
// ErrConsumersGone as a clean stop.
func cleanSentinel(out *tbuf.SharedOut, b tbuf.Batch) error {
	if err := out.Put(b); err != nil {
		if errors.Is(err, tbuf.ErrConsumersGone) {
			return nil
		}
		return err
	}
	return nil
}

// cleanPropagate: returning the error verbatim hands the sentinel decision
// to the caller (the emitResult idiom).
func cleanPropagate(out *tbuf.SharedOut, b tbuf.Batch) error {
	return out.Put(b)
}

// cleanDelegate: passing the error to another function is propagation too.
func cleanDelegate(out *tbuf.SharedOut, b tbuf.Batch, classify func(error) error) error {
	err := out.Put(b)
	return classify(err)
}

// cleanBufferChecked: Buffer.Put errors only need to be checked; no
// sentinel discipline applies to the intra-stage port.
func cleanBufferChecked(buf *tbuf.Buffer, b tbuf.Batch) error {
	if err := buf.Put(b); err != nil {
		return err
	}
	return nil
}
