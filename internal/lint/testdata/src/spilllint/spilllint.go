// Test cases for spilllint: DropTemp registration before first spill
// write.
package spilllint

// Local stand-ins for the engine's disk manager and spill writer: the
// analyzer matches by the names newSpillWriter and DropTemp, which are the
// contract.

type disk struct{}

func (d *disk) DropTemp(name string) {}

type spillWriter struct{}

func (w *spillWriter) add(v int) error { return nil }
func (w *spillWriter) close() error    { return nil }

func newSpillWriter(d *disk, name string) *spillWriter { return &spillWriter{} }

// noDefer: pages spill with no cleanup registered anywhere — the temp file
// leaks on every error path.
func noDefer(d *disk) error {
	w := newSpillWriter(d, "run-0") // want `without any DropTemp defer`
	if err := w.add(1); err != nil {
		return err
	}
	return w.close()
}

// lateDefer: cleanup registered only after the first write leaves a leak
// window in between.
func lateDefer(d *disk) error {
	w := newSpillWriter(d, "run-1") // want `written before its DropTemp defer`
	if err := w.add(1); err != nil {
		return err
	}
	defer d.DropTemp("run-1")
	return w.close()
}

// cleanImmediateDefer: the sort-run idiom — register right after creation,
// before any write.
func cleanImmediateDefer(d *disk) error {
	w := newSpillWriter(d, "run-2")
	defer d.DropTemp("run-2")
	if err := w.add(1); err != nil {
		return err
	}
	return w.close()
}

// cleanUpfrontLoopDefer: the partitioned-join idiom — one function-level
// cleanup defer installed before the writers are even created, dropping
// every name accumulated since.
func cleanUpfrontLoopDefer(d *disk) error {
	var names []string
	defer func() {
		for _, n := range names {
			d.DropTemp(n)
		}
	}()
	ws := make([]*spillWriter, 4)
	for i := range ws {
		ws[i] = newSpillWriter(d, "part")
		names = append(names, "part")
	}
	if err := ws[0].add(1); err != nil {
		return err
	}
	return ws[0].close()
}

// cleanClosureSpill: the external-sort idiom — the run spiller is a
// closure, and the enclosing function's cleanup defer (installed before any
// run can spill) covers the writers it creates.
func cleanClosureSpill(d *disk) error {
	var names []string
	defer func() {
		for _, n := range names {
			d.DropTemp(n)
		}
	}()
	spill := func() error {
		names = append(names, "run")
		w := newSpillWriter(d, "run")
		if err := w.add(1); err != nil {
			return err
		}
		return w.close()
	}
	return spill()
}

// cleanNeverWritten: created but never written; the defer still covers the
// file creation itself.
func cleanNeverWritten(d *disk) *spillWriter {
	w := newSpillWriter(d, "run-3")
	defer d.DropTemp("run-3")
	return w
}
