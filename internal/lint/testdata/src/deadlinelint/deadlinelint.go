// Test cases for deadlinelint: packet-context derivation.
package deadlinelint

import (
	"context"

	"core"
)

// badPacketBackground: operator code holding a packet must not manufacture
// a root context — the query's deadline would never reach the derived work.
func badPacketBackground(pkt *core.Packet) {
	ctx, cancel := context.WithCancel(context.Background()) // want `holds query state but creates context.Background`
	defer cancel()
	<-ctx.Done()
}

// badQueryTODO: the same detachment via TODO on a query-carrying helper.
func badQueryTODO(q *core.Query) {
	_ = context.TODO() // want `holds query state but creates context.TODO`
}

// badMethodReceiver: methods on query state count like parameters.
type runner struct{}

func (r *runner) run(pkt *core.Packet, f func()) { f() }

// badNestedClosure: a closure inside a packet-carrying function still works
// for that query; hiding the root context one level down changes nothing.
func badNestedClosure(pkt *core.Packet) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 0) // want `holds query state but creates context.Background`
		defer cancel()
		<-ctx.Done()
	}()
}

// cleanDerived: deriving from a caller-threaded context is the contract.
func cleanDerived(pkt *core.Packet, ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	<-sub.Done()
}

// cleanNoQueryState: functions without packet or query state may create
// root contexts (Submit callers, main, tests).
func cleanNoQueryState() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	return ctx
}
