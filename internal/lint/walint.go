// walint enforces the write-ahead log's "log before mutate" contract on
// heap-page mutation sites. The recovery invariant (redo-only, no undo)
// only holds if every page mutation is the application of an
// already-durable WAL record: per table, log order equals apply order, and
// nothing ever reaches a page without a commit record behind it. The code
// shape that guarantees this is narrow — all staging goes through sm
// transactions, and exactly one function (applyTable, called from Commit
// after the batch is flushed and from recovery redo) touches pages.
//
// Mechanically:
//
//   - any call to a heap.File mutator (Append, ReplaceAt, DeleteAt)
//     outside the storage-manager package is flagged: operators and the
//     facade must stage through transactions, never write pages;
//   - inside the storage manager, the call must sit in an allowlisted
//     apply function. Everything else — convenience helpers, new fast
//     paths — is exactly the "mutate first, log later (or never)" bug
//     class this analyzer exists to stop.
//
// The allowlist is part of the contract: applyTable (the single commit/
// redo applier) and Load's explicitly-unlogged no-WAL fallback.

package lint

import (
	"go/ast"
)

// WALLint is the log-before-mutate analyzer.
var WALLint = &Analyzer{
	Name: "walint",
	Doc: "check that heap pages are mutated only by the storage manager's WAL apply path " +
		"(applyTable after a durable commit record), never directly by operators or helpers",
	Run: runWALLint,
}

const (
	heapPath = "qpipe/internal/storage/heap"
	smPath   = "qpipe/internal/storage/sm"
)

// walApplyFuncs are the storage-manager functions allowed to call heap
// mutators. applyTable runs strictly after the commit batch is durable
// (Commit holds the WAL flush before it; recovery redoes from the log).
// Load's direct arm is the documented no-WAL fallback — with a WAL
// attached it routes through a transaction instead.
var walApplyFuncs = map[string]bool{
	"applyTable": true,
	"Load":       true,
}

// heapMutators are the heap.File methods that change page contents.
var heapMutators = []string{"Append", "ReplaceAt", "DeleteAt"}

func runWALLint(pass *Pass) error {
	inSM := pkgMatches(pass.Pkg, smPath)
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isMethodCall(pass.TypesInfo, call, heapPath, "File", heapMutators...) {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !inSM {
				pass.Reportf(call.Pos(),
					"heap page mutation (File.%s) outside the storage manager: writes must stage "+
						"through an sm transaction so they are WAL-logged before touching pages",
					fn.Name())
				return true
			}
			if name := outermostFuncName(parents, call); !walApplyFuncs[name] {
				pass.Reportf(call.Pos(),
					"heap page mutation (File.%s) in %s, outside the WAL apply path: log before "+
						"mutate — stage the write in a transaction and let applyTable touch the "+
						"page after the commit record is durable",
					fn.Name(), name)
			}
			return true
		})
	}
	return nil
}

// outermostFuncName climbs to the top-level declaration enclosing n:
// closures inside an allowlisted applier belong to it.
func outermostFuncName(parents map[ast.Node]ast.Node, n ast.Node) string {
	name := "func literal"
	for cur := n; cur != nil; cur = parents[cur] {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			name = fd.Name.Name
		}
	}
	return name
}
