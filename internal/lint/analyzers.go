package lint

// All returns the full qpipe-lint analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LeaseLint,
		EmitLint,
		SpillLint,
		SigLint,
		CtxLint,
		DeadlineLint,
		WALLint,
	}
}

// ByName resolves a comma-separated analyzer selection against the suite;
// unknown names return ok=false along with the offending name.
func ByName(names []string) (selected []*Analyzer, unknown string, ok bool) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		a, found := byName[n]
		if !found {
			return nil, n, false
		}
		selected = append(selected, a)
	}
	return selected, "", true
}
