// Package lint implements qpipe-lint: a suite of static analyzers that
// mechanically enforce the engine invariants the README and three past PRs
// otherwise leave to reviewers' heads — the batch-lease protocol, the
// no-error-swallowing emitter idiom, temp-spill registration-before-write,
// signature purity with respect to parallelism/batch hints, and context
// threading into operator sub-workers.
//
// The package mirrors the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic, object facts, an analysistest-style test
// runner) but is built on the standard library alone: packages are loaded
// with `go list` plus go/parser and go/types, and stdlib dependencies are
// imported from build-cache export data. That keeps the linter runnable in
// hermetic environments with nothing but the Go toolchain, and the API
// close enough to x/tools that migrating onto the real framework later is a
// mechanical substitution.
//
// Every diagnostic can be suppressed at the line it fires on (or the line
// directly above) with an explicit, justified directive:
//
//	//qpipelint:ignore <analyzer> <reason>
//
// Unknown analyzer names and directives missing a reason are themselves
// diagnostics — a typoed suppression must never become a silent one.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. The shape deliberately
// matches golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //qpipelint:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description shown by `qpipe-lint -list`.
	Doc string

	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package, again
// shaped after analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactStore
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches a fact about obj, visible to later passes of the
// same analyzer over packages that import this one. Packages are analyzed in
// dependency order, so facts flow strictly downstream.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.set(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact retrieves a fact previously exported about obj by this
// analyzer (possibly while analyzing a dependency package).
func (p *Pass) ImportObjectFact(obj types.Object) (any, bool) {
	return p.facts.get(p.Analyzer.Name, obj)
}

// FactStore holds per-analyzer object facts across the packages of one run.
// The loader type-checks every in-module package from source with one shared
// FileSet and importer, so types.Object identities are stable across
// packages and can key the store directly.
type FactStore struct {
	m map[string]map[types.Object]any
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore { return &FactStore{m: map[string]map[types.Object]any{}} }

func (s *FactStore) set(analyzer string, obj types.Object, fact any) {
	byObj := s.m[analyzer]
	if byObj == nil {
		byObj = map[types.Object]any{}
		s.m[analyzer] = byObj
	}
	byObj[obj] = fact
}

func (s *FactStore) get(analyzer string, obj types.Object) (any, bool) {
	fact, ok := s.m[analyzer][obj]
	return fact, ok
}

// Run executes every analyzer over every package, in the given package
// order (the loader returns dependency order, which facts rely on), and
// returns the raw diagnostics sorted by position. Ignore directives are NOT
// applied here — see ApplyDirectives — so tests can assert on the unfiltered
// stream.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFactStore()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s failed on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
