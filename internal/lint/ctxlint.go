// ctxlint enforces context threading into operator sub-workers: goroutines
// spawned through MicroEngine.SpawnSub (directly, or through the
// func(func()) spawner hooks the parallel helpers thread around) run on
// behalf of a specific packet, and cancellation/teardown reach them only
// through that packet's query context. A sub-worker that manufactures its
// own context.Background()/context.TODO() detaches itself from the query's
// cancellation — exactly the class of orphaned worker the upcoming
// multi-client server would multiply.

package lint

import (
	"go/ast"
	"go/types"
)

// CtxLint is the sub-worker context-threading analyzer.
var CtxLint = &Analyzer{
	Name: "ctxlint",
	Doc: "check that closures spawned as µEngine sub-workers (MicroEngine.SpawnSub and " +
		"func(func()) spawner hooks) thread the packet's context instead of creating " +
		"context.Background()/context.TODO()",
	Run: runCtxLint,
}

func runCtxLint(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSpawnCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkSpawnedClosure(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// isSpawnCall matches MicroEngine.SpawnSub calls and calls through
// func(func()) spawner variables/parameters (the subSpawner hook threaded
// into fanOut/parFeed/routeAffine).
func isSpawnCall(info *types.Info, call *ast.CallExpr) bool {
	if isMethodCall(info, call, corePath, "MicroEngine", "SpawnSub") {
		return true
	}
	// A call through a variable whose type is func(func()).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			return isSpawnerType(v.Type())
		}
	}
	return false
}

// isSpawnerType reports whether t is func(func()) — one nullary function
// parameter, no results.
func isSpawnerType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	inner, ok := sig.Params().At(0).Type().Underlying().(*types.Signature)
	return ok && inner.Params().Len() == 0 && inner.Results().Len() == 0
}

// checkSpawnedClosure flags context.Background()/context.TODO() anywhere in
// the sub-worker closure, including nested literals.
func checkSpawnedClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"µEngine sub-worker creates context.%s(): sub-workers run on behalf of a packet and must thread the packet's query context so cancellation reaches them",
				fn.Name())
		}
		return true
	})
}
