// spilllint enforces temp-spill registration-before-write (PR 2): every
// spill writer (the hjb/hjp partition files and sortrun/sorted files of the
// hybrid hash join and external sort) must be covered by a DropTemp
// registration — in practice a defer that drops the temp name(s) —
// installed before the writer's first write. A writer that spills pages
// before any cleanup is registered leaks its temp file on every error path
// between the first write and the (too late or absent) registration; PR 2
// closed exactly such windows in partitionedJoin and the sort run spiller.
//
// Mechanically, within the function that calls newSpillWriter:
//
//   - find the first write through the returned writer (an .add or .close
//     call whose receiver is the writer variable, or an element of the
//     writer slice it was stored into);
//   - require a defer statement that mentions DropTemp, positioned before
//     that first write (a function-level cleanup defer installed up front
//     qualifies, as does a defer right after creation).
//
// A writer with no DropTemp defer anywhere in the function is flagged even
// if it is never written: creation itself creates the file on disk.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpillLint is the temp-spill registration analyzer.
var SpillLint = &Analyzer{
	Name: "spilllint",
	Doc: "check that every spill/temp-file writer (newSpillWriter) is covered by a DropTemp " +
		"defer registered before its first write, so error paths cannot leak temp files",
	Run: runSpillLint,
}

func runSpillLint(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fb := range fileFuncBodies(f) {
			// Only declaration scopes: checkSpillFunc descends into nested
			// closures itself, so a run-spiller closure is analyzed with the
			// enclosing function's cleanup defers in view (the external-sort
			// idiom) instead of as a defer-less scope of its own.
			if fb.decl != nil {
				checkSpillFunc(pass, fb)
			}
		}
	}
	return nil
}

type spillCreation struct {
	pos token.Pos
	// owner is the variable the writer (or the slice of writers) was
	// assigned to; writes are matched through it.
	owner types.Object
}

func checkSpillFunc(pass *Pass, fb funcBody) {
	info := pass.TypesInfo

	// Gather creations, defers mentioning DropTemp, and writer uses, all
	// with positions; nested closures count (a cleanup closure and a
	// partition worker both belong to the creating function's scope).
	var creations []spillCreation
	var dropDefers []token.Pos
	writeUses := map[types.Object]token.Pos{} // earliest .add/.close through each owner

	ast.Inspect(fb.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if mentionsDropTemp(x) {
				dropDefers = append(dropDefers, x.Pos())
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isNewSpillWriter(info, call) || i >= len(x.Lhs) {
					continue
				}
				if owner := assignOwner(info, x.Lhs[i]); owner != nil {
					creations = append(creations, spillCreation{pos: call.Pos(), owner: owner})
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "add" && sel.Sel.Name != "close" && sel.Sel.Name != "Append" {
				return true
			}
			if owner := receiverOwner(info, sel.X); owner != nil {
				if prev, ok := writeUses[owner]; !ok || x.Pos() < prev {
					writeUses[owner] = x.Pos()
				}
			}
		}
		return true
	})

	for _, c := range creations {
		firstWrite, hasWrite := writeUses[c.owner]
		covered := false
		for _, dp := range dropDefers {
			if !hasWrite || dp < firstWrite {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		if len(dropDefers) == 0 {
			pass.Reportf(c.pos,
				"spill writer created without any DropTemp defer in %s: the temp file leaks on every error path",
				fb.name)
		} else {
			pass.Reportf(c.pos,
				"spill writer is written before its DropTemp defer is installed in %s: a failed write in between leaks the temp file",
				fb.name)
		}
	}
}

// isNewSpillWriter matches calls to a function named newSpillWriter (the
// engine's single spill-file constructor; the name is the contract).
func isNewSpillWriter(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "newSpillWriter"
}

// mentionsDropTemp reports whether the defer's subtree (including a
// deferred closure's body) calls something named DropTemp.
func mentionsDropTemp(d *ast.DeferStmt) bool {
	found := false
	ast.Inspect(d, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "DropTemp" {
			found = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "DropTemp" {
			found = true
		}
		return !found
	})
	return found
}

// assignOwner resolves the variable a writer lands in: a plain identifier,
// or the base slice for buildFiles[i] = newSpillWriter(...).
func assignOwner(info *types.Info, lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return nil
		}
		return objOf(info, x)
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return objOf(info, base)
		}
	}
	return nil
}

// receiverOwner resolves a write receiver back to the owning variable:
// w.add -> w, buildFiles[p].add -> buildFiles.
func receiverOwner(info *types.Info, recv ast.Expr) types.Object {
	switch x := ast.Unparen(recv).(type) {
	case *ast.Ident:
		return objOf(info, x)
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return objOf(info, base)
		}
	}
	return nil
}
