// The //qpipelint:ignore directive: explicit, justified, per-line
// suppression of a named analyzer's diagnostics. A directive written as a
// trailing comment suppresses findings on its own line only; a directive on
// a line of its own suppresses findings on the line below only (both styles
// are accepted so gofmt'd long lines stay suppressible, but neither bleeds
// into neighboring statements).
//
// Suppression is deliberately noisy when misused: naming an analyzer the
// driver does not know, or omitting the reason, produces a diagnostic
// instead of a silent no-op — the failure mode of a typoed suppression must
// never be an invisible hole in CI.

package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const directivePrefix = "//qpipelint:ignore"

// directive is one parsed //qpipelint:ignore comment.
type directive struct {
	pos       token.Position
	analyzers []string
	trailing  bool   // shares its line with code (suppresses that line, not the next)
	malformed string // non-empty: why the directive is invalid
}

// parseDirectives extracts every qpipelint:ignore directive from the
// package's comments. Only //-style comments are recognized, matching the
// Go convention for machine directives.
func parseDirectives(pkg *Package, known map[string]bool) []directive {
	var dirs []directive
	for _, f := range pkg.Files {
		code := codeLines(pkg, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := directive{pos: pkg.Fset.Position(c.Pos())}
				d.trailing = code[d.pos.Line]
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //qpipelint:ignoreXYZ — not our directive.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "missing analyzer name and reason (want //qpipelint:ignore <analyzer> <reason>)"
				case len(fields) == 1:
					d.malformed = "missing reason (want //qpipelint:ignore <analyzer> <reason>)"
				default:
					// fields[1:] is the (mandatory, already verified
					// present) free-text reason; only the analyzer list
					// drives suppression.
					d.analyzers = strings.Split(fields[0], ",")
					for _, name := range d.analyzers {
						if !known[name] {
							d.malformed = "unknown analyzer \"" + name + "\" (known: " + strings.Join(sortedNames(known), ", ") + ")"
							break
						}
					}
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// codeLines reports the lines of f that contain non-comment syntax, used to
// tell trailing directives (code shares the line) from standalone ones.
func codeLines(pkg *Package, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		lines[pkg.Fset.Position(n.Pos()).Line] = true
		lines[pkg.Fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

func sortedNames(known map[string]bool) []string {
	var names []string
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ApplyDirectives filters diags through the //qpipelint:ignore directives
// found in pkgs. It returns the surviving diagnostics plus one "qpipelint"
// diagnostic per malformed or unknown-analyzer directive, sorted by
// position. analyzers is the set of known analyzer names.
func ApplyDirectives(pkgs []*Package, diags []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// suppressed[file][line][analyzer] reports an active suppression.
	suppressed := map[string]map[int]map[string]bool{}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, d := range parseDirectives(pkg, known) {
			if d.malformed != "" {
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: "qpipelint",
					Message:  "malformed qpipelint:ignore directive: " + d.malformed,
				})
				continue
			}
			byLine := suppressed[d.pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				suppressed[d.pos.Filename] = byLine
			}
			// A trailing directive covers exactly its own line; a
			// standalone one covers exactly the next. Never both — a valid
			// suppression must not bleed into the neighboring statement.
			line := d.pos.Line
			if !d.trailing {
				line++
			}
			if byLine[line] == nil {
				byLine[line] = map[string]bool{}
			}
			for _, name := range d.analyzers {
				byLine[line][name] = true
			}
		}
	}
	for _, dg := range diags {
		if suppressed[dg.Pos.Filename][dg.Pos.Line][dg.Analyzer] {
			continue
		}
		out = append(out, dg)
	}
	sortDiagnostics(out)
	return out
}
