package lint

import "testing"

// Each analyzer runs over its testdata package(s); want comments in the
// sources define the expected diagnostics (firing cases), and the clean
// functions assert the absence of false positives.

func TestLeaseLint(t *testing.T) {
	RunTest(t, "testdata", LeaseLint, "leaselint")
}

func TestEmitLint(t *testing.T) {
	RunTest(t, "testdata", EmitLint, "emitlint")
}

func TestSpillLint(t *testing.T) {
	RunTest(t, "testdata", SpillLint, "spilllint")
}

// TestSigLint loads the plan stand-in and a dependent package in one
// session: the cross-package case (siguser.Wrapper) only fires if the
// hint-taint fact exported while analyzing plan survives into the siguser
// pass.
func TestSigLint(t *testing.T) {
	RunTest(t, "testdata", SigLint, "plan", "siguser")
}

func TestCtxLint(t *testing.T) {
	RunTest(t, "testdata", CtxLint, "ctxlint")
}

func TestDeadlineLint(t *testing.T) {
	RunTest(t, "testdata", DeadlineLint, "deadlinelint")
}

// TestWALLint loads the heap stand-in plus both halves of the contract:
// the sm package (mutators legal only in apply functions) and an outside
// package (mutators never legal).
func TestWALLint(t *testing.T) {
	RunTest(t, "testdata", WALLint, "heap", "sm", "walint")
}
