// leaselint enforces the batch-lease protocol (PR 3, hardened by PR 4's
// Get-prefers-abandoned fix): a batch array drawn from the runtime pool —
// via SharedOut.NewBatch, BatchPool.Get/GetCap on the producer side, or
// Buffer.Get on the consumer side — has exactly one owner at a time.
// Handing the array to SharedOut.Put, Buffer.Put, Buffer.Recycle or
// BatchPool.Put transfers (or retires) the lease; after that the array must
// not be touched. Tuples received from a Buffer.Get are immutable: they are
// shared by reference with OSP satellites and the replay window, so writing
// into them corrupts other queries' results.
//
// The analysis is function-local and deliberately conservative: a batch
// that escapes (passed to another function, returned, stored, captured by a
// closure) is assumed to transfer its lease with it, so only definite
// in-function violations are reported:
//
//   - use of a batch variable after its lease was handed off on every path
//     to the use (straight-line code; branchy handoffs demote to unknown)
//   - a leased batch that neither reaches a handoff nor escapes the
//     function at all (the lease leaks; with a pool attached the array is
//     lost to the free list)
//   - writes through tuples obtained from a consumer-side Buffer.Get
//     (published rows are immutable)

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeaseLint is the batch-lease protocol analyzer.
var LeaseLint = &Analyzer{
	Name: "leaselint",
	Doc: "check the batch lease protocol: pool-drawn batch arrays must be handed off exactly once " +
		"(SharedOut.Put/Buffer.Put/Recycle/BatchPool.Put), never used after handoff, and rows read " +
		"from a Buffer.Get are immutable",
	Run: runLeaseLint,
}

type leaseStatus int

const (
	leaseLeased  leaseStatus = iota // drawn, owned by this function
	leaseHanded                     // lease definitely transferred
	leaseUnknown                    // reassigned, escaped, or branch-dependent
)

type leaseInfo struct {
	status      leaseStatus
	drawPos     token.Pos
	drawDesc    string
	handoffPos  token.Pos
	handoffDesc string
	everHandoff bool
	everEscape  bool
	consumer    bool // drawn via Buffer.Get: rows are published/immutable
}

type leaseAnalysis struct {
	pass   *Pass
	fnName string
	// tracked lease state per batch variable.
	state map[types.Object]*leaseInfo
	// pubTuples are tuple variables derived from a consumer-side batch
	// (range value or index read); writes through them are reported.
	pubTuples map[types.Object]token.Pos
}

func runLeaseLint(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fb := range fileFuncBodies(f) {
			la := &leaseAnalysis{
				pass:      pass,
				fnName:    fb.name,
				state:     map[types.Object]*leaseInfo{},
				pubTuples: map[types.Object]token.Pos{},
			}
			la.stmts(fb.body.List)
			la.reportLeaks()
		}
	}
	return nil
}

// isLeaseDraw classifies a call as a producer- or consumer-side lease draw.
func (la *leaseAnalysis) isLeaseDraw(call *ast.CallExpr) (consumer, ok bool) {
	info := la.pass.TypesInfo
	switch {
	case isMethodCall(info, call, tbufPath, "SharedOut", "NewBatch"),
		isMethodCall(info, call, tbufPath, "BatchPool", "Get", "GetCap"):
		return false, true
	case isMethodCall(info, call, tbufPath, "Buffer", "Get"):
		return true, true
	}
	return false, false
}

// isHandoff reports whether call transfers a batch lease through its first
// argument.
func (la *leaseAnalysis) isHandoff(call *ast.CallExpr) (desc string, ok bool) {
	info := la.pass.TypesInfo
	switch {
	case isMethodCall(info, call, tbufPath, "SharedOut", "Put"):
		return "SharedOut.Put", true
	case isMethodCall(info, call, tbufPath, "Buffer", "Put"):
		return "Buffer.Put", true
	case isMethodCall(info, call, tbufPath, "Buffer", "Recycle"):
		return "Buffer.Recycle", true
	case isMethodCall(info, call, tbufPath, "BatchPool", "Put"):
		return "BatchPool.Put", true
	}
	return "", false
}

func (la *leaseAnalysis) reportLeaks() {
	for _, info := range la.state {
		if !info.everHandoff && !info.everEscape {
			la.pass.Reportf(info.drawPos,
				"batch leased from %s in %s is neither handed off (Put/Recycle/pool.Put) nor passed on — the array lease leaks",
				info.drawDesc, la.fnName)
		}
	}
}

// ---- statement walk ----------------------------------------------------------

func (la *leaseAnalysis) stmts(list []ast.Stmt) {
	for _, s := range list {
		la.stmt(s)
	}
}

func (la *leaseAnalysis) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		la.assign(x)
	case *ast.ExprStmt:
		la.expr(x.X, false)
		la.scanHandoffs(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					la.valueSpec(vs)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			la.expr(r, true)
		}
	case *ast.DeferStmt:
		// Deferred handoffs run at function exit: they satisfy the leak
		// check but do not change the linear status (uses between here and
		// the function's end are legal). Uses inside the deferred call are
		// not ordered with the statements that follow, so they are treated
		// as captures, not flagged.
		la.deferredHandoffs(x.Call)
	case *ast.GoStmt:
		la.expr(x.Call, true)
	case *ast.SendStmt:
		la.expr(x.Chan, false)
		la.expr(x.Value, true)
	case *ast.IncDecStmt:
		la.expr(x.X, false)
	case *ast.IfStmt:
		if x.Init != nil {
			la.stmt(x.Init)
		}
		la.expr(x.Cond, false)
		la.scanHandoffs(x.Cond)
		before := la.snapshot()
		la.branch(x.Body.List, before)
		if x.Else != nil {
			la.branch([]ast.Stmt{x.Else}, before)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			la.stmt(x.Init)
		}
		if x.Cond != nil {
			la.expr(x.Cond, false)
		}
		before := la.snapshot()
		body := x.Body.List
		if x.Post != nil {
			body = append(body[:len(body):len(body)], x.Post)
		}
		la.branch(body, before)
	case *ast.RangeStmt:
		la.rangeStmt(x)
	case *ast.BlockStmt:
		la.stmts(x.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			la.stmt(x.Init)
		}
		if x.Tag != nil {
			la.expr(x.Tag, false)
		}
		before := la.snapshot()
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				la.branch(cc.Body, before)
			}
		}
	case *ast.TypeSwitchStmt:
		before := la.snapshot()
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				la.branch(cc.Body, before)
			}
		}
	case *ast.SelectStmt:
		before := la.snapshot()
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				body := cc.Body
				if cc.Comm != nil {
					body = append([]ast.Stmt{cc.Comm}, body...)
				}
				la.branch(body, before)
			}
		}
	case *ast.LabeledStmt:
		la.stmt(x.Stmt)
	}
}

// branch analyzes a conditional body starting from the snapshot, then
// merges: any variable whose status the branch changed becomes unknown —
// the branch may not execute, so neither "still leased" nor "handed" can be
// asserted afterwards. Reports inside the branch fire with full precision.
func (la *leaseAnalysis) branch(body []ast.Stmt, before map[types.Object]leaseStatus) {
	la.stmts(body)
	for obj, info := range la.state {
		if st, ok := before[obj]; ok && st != info.status {
			info.status = leaseUnknown
		} else if !ok {
			// Drawn inside the branch: its fate was decided there (leak
			// check still applies via everHandoff/everEscape).
			info.status = leaseUnknown
		}
	}
}

func (la *leaseAnalysis) snapshot() map[types.Object]leaseStatus {
	m := make(map[types.Object]leaseStatus, len(la.state))
	for obj, info := range la.state {
		m[obj] = info.status
	}
	return m
}

func (la *leaseAnalysis) valueSpec(vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		la.expr(v, false)
	}
	if len(vs.Names) >= 1 && len(vs.Values) == 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			la.trackDraw(vs.Names[0], call)
		}
	}
}

func (la *leaseAnalysis) assign(x *ast.AssignStmt) {
	// Published-row mutation: writing through an index of a consumer batch
	// or of a tuple derived from one.
	for _, lhs := range x.Lhs {
		la.checkPublishedWrite(lhs)
	}

	// Uses and handoffs on the RHS first (pre-assignment order).
	appendTargets := map[types.Object]bool{}
	for i, rhs := range x.Rhs {
		// b = append(b, ...) grows the leased array in place and keeps the
		// lease; don't count the self-reference as an escape.
		if i < len(x.Lhs) {
			if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(la.pass.TypesInfo, call) {
					if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && first.Name == id.Name {
						if obj := objOf(la.pass.TypesInfo, id); obj != nil {
							appendTargets[obj] = true
						}
					}
				}
			}
		}
		la.exprSkipAppendBase(rhs, appendTargets)
		la.scanHandoffs(rhs)
	}

	// Then the effects of the assignment itself.
	for i, lhs := range x.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			la.expr(lhs, false)
			// Storing into a field, slice element or dereference hands the
			// lease to whatever owns the destination (the cursor idiom:
			// c.batch = b, recycled by a later release()).
			if len(x.Lhs) == len(x.Rhs) {
				la.markEscapes(x.Rhs[i])
			}
			continue
		}
		obj := objOf(la.pass.TypesInfo, id)
		if obj == nil || id.Name == "_" {
			continue
		}
		// Fresh draw?
		if len(x.Rhs) == 1 && i == 0 {
			if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
				if la.trackDraw(id, call) {
					continue
				}
			}
		}
		if info, tracked := la.state[obj]; tracked && !appendTargets[obj] {
			// Reassigned: the old array's fate was decided elsewhere
			// (commonly `b = nil` after a manual transfer).
			info.status = leaseUnknown
			info.everEscape = true
		}
		// Derived tuple? t := batch[i] over a consumer batch.
		if len(x.Rhs) == 1 && i < len(x.Rhs) {
			la.trackDerivedTuple(id, x.Rhs[i])
		}
	}
}

// trackDraw registers id as a leased batch if call is a lease draw.
func (la *leaseAnalysis) trackDraw(id *ast.Ident, call *ast.CallExpr) bool {
	consumer, ok := la.isLeaseDraw(call)
	if !ok {
		return false
	}
	obj := objOf(la.pass.TypesInfo, id)
	if obj == nil || id.Name == "_" {
		return true
	}
	fn := calleeFunc(la.pass.TypesInfo, call)
	desc := "pool"
	if fn != nil {
		_, recvName := recvTypeName(fn)
		desc = recvName + "." + fn.Name()
	}
	la.state[obj] = &leaseInfo{
		status:   leaseLeased,
		drawPos:  id.Pos(),
		drawDesc: desc,
		consumer: consumer,
	}
	return true
}

// trackDerivedTuple marks id as a published tuple when rhs reads an element
// of a consumer-side batch.
func (la *leaseAnalysis) trackDerivedTuple(id *ast.Ident, rhs ast.Expr) {
	idx, ok := ast.Unparen(rhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	base, ok := ast.Unparen(idx.X).(*ast.Ident)
	if !ok {
		return
	}
	baseObj := objOf(la.pass.TypesInfo, base)
	if info, tracked := la.state[baseObj]; tracked && info.consumer {
		if obj := objOf(la.pass.TypesInfo, id); obj != nil {
			la.pubTuples[obj] = id.Pos()
		}
	}
}

// checkPublishedWrite reports writes through published (immutable) rows:
// batch[i][j] = v, or t[j] = v for t derived from a consumer batch.
func (la *leaseAnalysis) checkPublishedWrite(lhs ast.Expr) {
	// Strip field selectors: t[0].I = v writes through the row just like
	// t[0] = v does.
	e := ast.Unparen(lhs)
	for {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			e = ast.Unparen(sel.X)
			continue
		}
		break
	}
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return
	}
	switch base := ast.Unparen(idx.X).(type) {
	case *ast.Ident:
		if _, pub := la.pubTuples[objOf(la.pass.TypesInfo, base)]; pub {
			la.pass.Reportf(lhs.Pos(),
				"write through tuple %s read from a Buffer.Get batch: rows are immutable once published (shared by reference with OSP satellites and the replay window)",
				base.Name)
		}
	case *ast.IndexExpr:
		if inner, ok := ast.Unparen(base.X).(*ast.Ident); ok {
			if info, tracked := la.state[objOf(la.pass.TypesInfo, inner)]; tracked && info.consumer {
				la.pass.Reportf(lhs.Pos(),
					"write into row of consumer batch %s: rows are immutable once published (shared by reference with OSP satellites and the replay window)",
					inner.Name)
			}
		}
	}
}

// rangeStmt handles `for i, t := range batch`: the range expression is a
// read; over a consumer batch, the value variable becomes a published
// tuple.
func (la *leaseAnalysis) rangeStmt(x *ast.RangeStmt) {
	la.expr(x.X, false)
	if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
		if info, tracked := la.state[objOf(la.pass.TypesInfo, id)]; tracked && info.consumer {
			if v, ok := x.Value.(*ast.Ident); ok && v.Name != "_" {
				if obj := objOf(la.pass.TypesInfo, v); obj != nil {
					la.pubTuples[obj] = v.Pos()
				}
			}
		}
	}
	before := la.snapshot()
	la.branch(x.Body.List, before)
}

// deferredHandoffs records lease handoffs inside a defer for the leak
// check without advancing the linear status.
func (la *leaseAnalysis) deferredHandoffs(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := la.isHandoff(c); !ok {
			return true
		}
		if len(c.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(c.Args[0]).(*ast.Ident); ok {
			if info, tracked := la.state[objOf(la.pass.TypesInfo, id)]; tracked {
				info.everHandoff = true
			}
		}
		return true
	})
}

// scanHandoffs marks tracked batches handed off by any handoff call inside
// e, recording position and kind for later use-after-handoff reports.
func (la *leaseAnalysis) scanHandoffs(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are captures, handled by expr()
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc, ok := la.isHandoff(call)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if info, tracked := la.state[objOf(la.pass.TypesInfo, id)]; tracked {
			info.status = leaseHanded
			info.handoffPos = call.Pos()
			info.handoffDesc = desc
			info.everHandoff = true
		}
		return true
	})
}

// ---- expression walk ---------------------------------------------------------

// expr walks e reporting uses of handed-off batches; escape=true marks
// occurrences that transfer the value out of the function's hands.
func (la *leaseAnalysis) expr(e ast.Expr, escape bool) {
	la.exprSkipAppendBase(e, nil)
	if escape {
		la.markEscapes(e)
	}
}

// exprSkipAppendBase walks e; appendKeep lists objects whose use as
// append's first argument (self-append) must not count as an escape.
func (la *leaseAnalysis) exprSkipAppendBase(e ast.Expr, appendKeep map[types.Object]bool) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.Ident:
		la.useIdent(x, false)
	case *ast.ParenExpr:
		la.exprSkipAppendBase(x.X, appendKeep)
	case *ast.SelectorExpr:
		la.exprSkipAppendBase(x.X, appendKeep)
	case *ast.IndexExpr:
		la.exprSkipAppendBase(x.X, appendKeep)
		la.exprSkipAppendBase(x.Index, appendKeep)
	case *ast.SliceExpr:
		// Slicing aliases the array; treat the base as escaping unless the
		// result feeds a handoff (covered by scanHandoffs on ident args
		// only, so slices stay conservative).
		la.markEscapes(x.X)
		la.exprSkipAppendBase(x.Low, appendKeep)
		la.exprSkipAppendBase(x.High, appendKeep)
		la.exprSkipAppendBase(x.Max, appendKeep)
	case *ast.StarExpr:
		la.exprSkipAppendBase(x.X, appendKeep)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			la.markEscapes(x.X)
		} else {
			la.exprSkipAppendBase(x.X, appendKeep)
		}
	case *ast.BinaryExpr:
		la.exprSkipAppendBase(x.X, appendKeep)
		la.exprSkipAppendBase(x.Y, appendKeep)
	case *ast.TypeAssertExpr:
		la.exprSkipAppendBase(x.X, appendKeep)
	case *ast.KeyValueExpr:
		la.exprSkipAppendBase(x.Value, appendKeep)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			la.markEscapes(el)
			la.exprSkipAppendBase(el, appendKeep)
		}
	case *ast.FuncLit:
		// Captured by a closure: ownership becomes non-local. The closure
		// body is analyzed as its own function scope by runLeaseLint.
		la.markEscapes(x)
	case *ast.CallExpr:
		la.callExpr(x, appendKeep)
	}
}

func (la *leaseAnalysis) callExpr(x *ast.CallExpr, appendKeep map[types.Object]bool) {
	info := la.pass.TypesInfo
	if isBuiltinAppend(info, x) {
		// append(b, ...): the base slot is a use, not an escape, when the
		// result is assigned back to b (appendKeep); appended *elements*
		// always escape.
		if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
			keep := appendKeep != nil && appendKeep[objOf(info, id)]
			la.useIdent(id, !keep)
		} else {
			la.exprSkipAppendBase(x.Args[0], appendKeep)
		}
		for _, a := range x.Args[1:] {
			la.markEscapes(a)
			la.exprSkipAppendBase(a, appendKeep)
		}
		return
	}
	if isBuiltinLenCap(info, x) {
		for _, a := range x.Args {
			la.exprSkipAppendBase(a, appendKeep)
		}
		return
	}
	if _, ok := la.isHandoff(x); ok {
		// The batch argument's use is legitimate here (this IS the
		// handoff); still flag a batch already handed off — a double Put.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			la.exprSkipAppendBase(sel.X, appendKeep)
		}
		for _, a := range x.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				la.useIdent(id, false)
			} else {
				la.exprSkipAppendBase(a, appendKeep)
			}
		}
		return
	}
	// Any other call: arguments escape (lease assumed to travel with
	// them).
	la.exprSkipAppendBase(x.Fun, appendKeep)
	for _, a := range x.Args {
		la.markEscapes(a)
		la.exprSkipAppendBase(a, appendKeep)
	}
}

// useIdent reports a use of a handed-off batch and records escapes.
func (la *leaseAnalysis) useIdent(id *ast.Ident, escape bool) {
	obj := objOf(la.pass.TypesInfo, id)
	info, tracked := la.state[obj]
	if !tracked {
		return
	}
	if info.status == leaseHanded {
		la.pass.Reportf(id.Pos(),
			"batch %s used after its lease was handed off by %s at %s",
			id.Name, info.handoffDesc, la.pass.Fset.Position(info.handoffPos))
		info.status = leaseUnknown // one report per handoff, not a cascade
	}
	if escape {
		info.everEscape = true
		if info.status == leaseLeased {
			info.status = leaseUnknown
		}
	}
}

// markEscapes flags every tracked identifier inside e as escaping.
func (la *leaseAnalysis) markEscapes(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if info, tracked := la.state[objOf(la.pass.TypesInfo, id)]; tracked {
				info.everEscape = true
				if info.status == leaseLeased {
					info.status = leaseUnknown
				}
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isBuiltinLenCap(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}
