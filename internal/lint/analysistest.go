// An analysistest-style runner: testdata packages under
// internal/lint/testdata/src/<path> annotate the lines where an analyzer
// must fire with trailing `// want "regexp"` comments (the x/tools
// convention), and RunTest asserts that the diagnostic stream matches the
// expectations exactly — every want satisfied, no unexpected findings.

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches one quoted or backquoted expectation in a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// RunTest loads each testdata package (rooted at testdataDir/src), runs the
// analyzer over all of them in one session, and matches diagnostics against
// the packages' want comments.
func RunTest(t *testing.T, testdataDir string, a *Analyzer, pkgpaths ...string) {
	t.Helper()
	diags, pkgs := runForTest(t, testdataDir, a, pkgpaths...)

	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// runForTest loads the packages and runs a single analyzer, returning the
// raw (pre-directive) diagnostics.
func runForTest(t *testing.T, testdataDir string, a *Analyzer, pkgpaths ...string) ([]Diagnostic, []*Package) {
	t.Helper()
	srcdir := filepath.Join(testdataDir, "src")
	pkgs, err := LoadFromSrcDir(srcdir, pkgpaths...)
	if err != nil {
		t.Fatalf("loading %v: %v", pkgpaths, err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return diags, pkgs
}

// collectWants re-scans the package sources for `// want ...` comments.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	// Re-parse with a fresh FileSet is unnecessary: the loader kept
	// comments, so read them straight off the ASTs.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, m := range matches {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  raw,
					})
				}
			}
		}
	}
	return wants
}

// mustParse is a test helper for directive tests operating on a synthetic
// single-file package (no type checking — directives are purely syntactic).
func mustParse(t *testing.T, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Name: "p", Fset: fset, Files: []*ast.File{f}, Dir: "."}
}
