// emitlint enforces the no-error-swallowing emitter idiom (PR 2): the
// error returned by SharedOut.Put and Buffer.Put must be checked, and for
// SharedOut.Put the tbuf.ErrConsumersGone sentinel must be handled
// distinctly from hard errors — it is the one error that means "clean early
// stop", and collapsing it into a generic `err != nil` failure makes a
// cancelled or early-terminated consumer report a false failure (or, worse,
// a swallowed hard error report a false success).
//
// Mechanically, for every Put call on a tbuf output port or buffer:
//
//   - the error result must not be discarded (expression statement, blank
//     assignment) or reduced in place to a nil-comparison of the call;
//   - for SharedOut.Put, the enclosing function must either mention
//     tbuf.ErrConsumersGone (errors.Is or direct comparison), return the
//     error variable (propagating it to a caller that distinguishes — the
//     emitResult idiom), or pass it to another function (delegation).
//     A function that consumes the error entirely locally without ever
//     naming the sentinel is flagged.

package lint

import (
	"go/ast"
	"go/types"
)

// EmitLint is the emitter error-handling analyzer.
var EmitLint = &Analyzer{
	Name: "emitlint",
	Doc: "check that SharedOut.Put/Buffer.Put errors are never discarded and that " +
		"tbuf.ErrConsumersGone is distinguished from hard errors rather than collapsed " +
		"into a generic failure",
	Run: runEmitLint,
}

func runEmitLint(pass *Pass) error {
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			shared := isMethodCall(pass.TypesInfo, call, tbufPath, "SharedOut", "Put")
			buffer := isMethodCall(pass.TypesInfo, call, tbufPath, "Buffer", "Put")
			if !shared && !buffer {
				return true
			}
			recv := "Buffer"
			if shared {
				recv = "SharedOut"
			}
			checkPutCall(pass, parents, call, recv, shared)
			return true
		})
	}
	return nil
}

func checkPutCall(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, recv string, wantSentinel bool) {
	parent := parents[call]
	// Unwrap parens between call and its consumer.
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[p]
			continue
		}
		break
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(),
			"%s.Put error discarded: a failed Put means the packet must stop (hard error) or stop cleanly (tbuf.ErrConsumersGone); ignoring it loses both",
			recv)
		return
	case *ast.DeferStmt, *ast.GoStmt:
		pass.Reportf(call.Pos(), "%s.Put error discarded (deferred/async call result is dropped)", recv)
		return
	case *ast.AssignStmt:
		errObj := assignedErrObj(pass.TypesInfo, p, call)
		if errObj == nil {
			pass.Reportf(call.Pos(),
				"%s.Put error assigned to blank: a failed Put means the packet must stop (hard error) or stop cleanly (tbuf.ErrConsumersGone)",
				recv)
			return
		}
		if wantSentinel {
			checkSentinelHandling(pass, parents, call, errObj)
		}
	case *ast.BinaryExpr:
		// `if out.Put(b) != nil { ... }`: checked for nil-ness only — the
		// sentinel cannot be distinguished from a hard error this way.
		if wantSentinel {
			pass.Reportf(call.Pos(),
				"SharedOut.Put error reduced to a nil-comparison: tbuf.ErrConsumersGone (clean early stop) is indistinguishable from a hard failure here")
		}
	case *ast.ReturnStmt:
		// `return out.Put(b)` propagates verbatim; the caller owns the
		// sentinel distinction (the emitResult idiom).
	}
}

// assignedErrObj returns the object the call's error result is bound to in
// assign, or nil when it lands in the blank identifier.
func assignedErrObj(info *types.Info, assign *ast.AssignStmt, call *ast.CallExpr) types.Object {
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) != call || i >= len(assign.Lhs) {
			continue
		}
		if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
			return objOf(info, id)
		}
	}
	return nil
}

// checkSentinelHandling verifies the enclosing function either names
// ErrConsumersGone, returns the error variable, or delegates it to another
// function; purely local consumption collapses the sentinel.
func checkSentinelHandling(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, errObj types.Object) {
	body := enclosingFunc(parents, call)
	if body == nil {
		return
	}
	mentionsSentinel := false
	delegated := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if x.Name == "ErrConsumersGone" {
				if obj := objOf(pass.TypesInfo, x); obj != nil && pkgMatches(obj.Pkg(), tbufPath) {
					mentionsSentinel = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(pass.TypesInfo, r, errObj) {
					delegated = true
				}
			}
		case *ast.CallExpr:
			for _, a := range x.Args {
				if usesObj(pass.TypesInfo, a, errObj) {
					delegated = true
				}
			}
		}
		return true
	})
	if !mentionsSentinel && !delegated {
		pass.Reportf(call.Pos(),
			"SharedOut.Put error is consumed locally without distinguishing tbuf.ErrConsumersGone: a clean early stop (all consumers gone) would be reported as a failure")
	}
}

// usesObj reports whether expr references obj.
func usesObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
