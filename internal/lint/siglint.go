// siglint enforces signature purity (PR 2, pinned again by PR 6): plan
// Signature()/BuildSignature() renderings and the normalization pipeline
// are the OSP sharing key — two queries share work iff their signatures are
// byte-identical — while parallelism and batch-size hints are per-query
// execution knobs. A signature that reads a hint field fragments sharing
// (equal plans with different hints stop overlapping), which silently
// defeats the optimizer objective PR 6 built. The engine therefore keeps
// hints strictly outside signatures, and this analyzer makes that
// mechanical: no function reachable from a Signature/BuildSignature method
// or a Normalize* function may read a plan hint field (Parallelism,
// BatchSize).
//
// Reachability crosses function and package boundaries through analyzer
// facts: when a package exports a helper that reads a hint field, the fact
// travels with the helper's object, and a downstream package's Signature
// method calling it is flagged at its own declaration. Packages are
// analyzed in dependency order, so facts always arrive before their
// importers.

package lint

import (
	"go/ast"
	"go/types"
)

// SigLint is the signature hint-purity analyzer.
var SigLint = &Analyzer{
	Name: "siglint",
	Doc: "check that Signature()/BuildSignature() and Normalize* functions never read " +
		"plan parallelism/batch-size hint fields (hints are per-query knobs excluded from " +
		"the OSP sharing key), tracking taint across helpers and packages via facts",
	Run: runSigLint,
}

// hintFieldNames are the plan-node fields that carry per-query execution
// hints rather than plan identity.
var hintFieldNames = map[string]bool{
	"Parallelism": true,
	"BatchSize":   true,
}

// hintTaint is the fact recorded for a function that (transitively) reads a
// hint field.
type hintTaint struct {
	Field string // which hint field
	Via   string // human-readable witness: who actually reads it
}

func runSigLint(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: direct hint-field reads and the static call graph, per
	// declared function.
	taint := map[*types.Func]*hintTaint{}
	callees := map[*types.Func][]*types.Func{}
	var decls []*ast.FuncDecl
	declOf := map[*types.Func]*ast.FuncDecl{}

	for _, f := range pass.Files {
		parents := parentMap(f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			declOf[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if field, ok := hintFieldRead(info, parents, x); ok {
						if taint[fn] == nil {
							taint[fn] = &hintTaint{Field: field, Via: funcDisplayName(fn)}
						}
					}
				case *ast.CallExpr:
					if callee := calleeFunc(info, x); callee != nil {
						callees[fn] = append(callees[fn], callee)
					}
				}
				return true
			})
		}
	}

	// Pass 2: propagate taint to a fixed point through the in-package call
	// graph, folding in facts exported by dependency packages.
	for changed := true; changed; {
		changed = false
		for fn, calls := range callees {
			if taint[fn] != nil {
				continue
			}
			for _, callee := range calls {
				var ct *hintTaint
				if t, ok := taint[callee]; ok {
					ct = t
				} else if fact, ok := pass.ImportObjectFact(callee); ok {
					ct, _ = fact.(*hintTaint)
				}
				if ct != nil {
					taint[fn] = &hintTaint{Field: ct.Field, Via: funcDisplayName(callee) + " -> " + ct.Via}
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: export facts and report tainted entry points.
	for fn, t := range taint {
		pass.ExportObjectFact(fn, t)
		if !isSignatureEntryPoint(fn) {
			continue
		}
		fd := declOf[fn]
		if fd == nil {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"%s must be hint-pure (it is the OSP sharing key) but reads plan hint field %s via %s",
			funcDisplayName(fn), t.Field, t.Via)
	}
	return nil
}

// hintFieldRead reports whether sel reads (not writes) a hint field of a
// plan-package struct.
func hintFieldRead(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	field := selection.Obj()
	if !hintFieldNames[field.Name()] || !pkgMatches(field.Pkg(), planPath) {
		return "", false
	}
	// A selector that is an assignment target (and only that) is a write —
	// WithParallelism-style setters stay clean.
	if assign, ok := parents[sel].(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if ast.Unparen(lhs) == sel {
				return "", false
			}
		}
	}
	return field.Name(), true
}

// isSignatureEntryPoint reports whether fn is part of the signature /
// normalization surface that must stay hint-pure.
func isSignatureEntryPoint(fn *types.Func) bool {
	name := fn.Name()
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		return name == "Signature" || name == "BuildSignature"
	}
	return len(name) > len("Normalize") && name[:9] == "Normalize" || name == "Normalize" ||
		len(name) > len("normalize") && name[:9] == "normalize" || name == "normalize"
}

// funcDisplayName renders fn as Type.Method or pkg-local name.
func funcDisplayName(fn *types.Func) string {
	if _, recvName := recvTypeName(fn); recvName != "" {
		return recvName + "." + fn.Name()
	}
	return fn.Name()
}
