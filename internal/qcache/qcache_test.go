package qcache

import (
	"fmt"
	"testing"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

func rows(n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{tuple.I64(int64(i))}
	}
	return out
}

func TestPutGetHitMiss(t *testing.T) {
	c := New(100, 50)
	if _, ok := c.Get("q1"); ok {
		t.Fatal("empty cache hit")
	}
	if !c.Put("q1", []string{"t"}, rows(10), time.Second) {
		t.Fatal("put rejected")
	}
	got, ok := c.Get("q1")
	if !ok || len(got) != 10 {
		t.Fatalf("get: %d %v", len(got), ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Tuples != 10 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOversizedRejected(t *testing.T) {
	c := New(100, 20)
	if c.Put("big", nil, rows(21), time.Second) {
		t.Fatal("oversized result admitted")
	}
	if c.Put("ok", nil, rows(20), time.Second) != true {
		t.Fatal("boundary result rejected")
	}
}

func TestDuplicatePutRejected(t *testing.T) {
	c := New(100, 50)
	c.Put("q", nil, rows(5), time.Second)
	if c.Put("q", nil, rows(5), time.Second) {
		t.Fatal("duplicate signature admitted twice")
	}
}

func TestEvictionByBenefit(t *testing.T) {
	c := New(30, 30)
	// cheap: low cost, never re-referenced -> low benefit.
	c.Put("cheap", nil, rows(10), time.Millisecond)
	// hot: expensive and re-referenced -> high benefit.
	c.Put("hot", nil, rows(10), time.Second)
	c.Get("hot")
	c.Get("hot")
	// Needs 20 free tuples: must evict "cheap", keep "hot".
	if !c.Put("new", nil, rows(20), time.Second) {
		t.Fatal("put with eviction failed")
	}
	if _, ok := c.Get("hot"); !ok {
		t.Fatal("high-benefit entry evicted")
	}
	if _, ok := c.Get("cheap"); ok {
		t.Fatal("low-benefit entry survived")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestInvalidateTable(t *testing.T) {
	c := New(1000, 500)
	c.Put("q1", []string{"a", "b"}, rows(5), time.Second)
	c.Put("q2", []string{"b"}, rows(5), time.Second)
	c.Put("q3", []string{"c"}, rows(5), time.Second)
	if n := c.InvalidateTable("b"); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := c.Get("q1"); ok {
		t.Fatal("q1 should be invalidated")
	}
	if _, ok := c.Get("q3"); !ok {
		t.Fatal("q3 should survive")
	}
	if st := c.Stats(); st.Tuples != 5 {
		t.Fatalf("tuples after invalidation: %d", st.Tuples)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New(50, 25)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("q%d", i), nil, rows(10), time.Duration(i)*time.Millisecond)
		if st := c.Stats(); st.Tuples > 50 {
			t.Fatalf("capacity exceeded: %d", st.Tuples)
		}
	}
}

func TestTablesOf(t *testing.T) {
	s := tuple.NewSchema(tuple.Col("k", tuple.KindInt))
	l := plan.NewTableScan("A", s, nil, nil, false)
	r := plan.NewIndexScan("B", s, "k", tuple.Value{}, tuple.Value{}, true, false, nil, nil)
	j := plan.NewHashJoin(l, r, 0, 0)
	agg := plan.NewAggregate(j, []expr.AggSpec{{Kind: expr.AggCount}})
	tables := TablesOf(agg)
	if len(tables) != 2 {
		t.Fatalf("tables: %v", tables)
	}
	// Duplicate table referenced twice counts once.
	j2 := plan.NewHashJoin(l, plan.NewTableScan("A", s, nil, nil, false), 0, 0)
	if got := TablesOf(j2); len(got) != 1 || got[0] != "A" {
		t.Fatalf("dedup: %v", got)
	}
}

func TestIsUpdate(t *testing.T) {
	s := tuple.NewSchema(tuple.Col("k", tuple.KindInt))
	if _, ok := IsUpdate(plan.NewTableScan("A", s, nil, nil, false)); ok {
		t.Fatal("scan is not an update")
	}
	table, ok := IsUpdate(plan.NewUpdate("T", nil))
	if !ok || table != "T" {
		t.Fatalf("update detection: %v %v", table, ok)
	}
}
