// Package qcache implements the query-result cache that fronts the engine —
// the first stage in the paper's Figure 2 ("once a query is submitted, it
// first performs a lookup to a cache of recently completed queries; on a
// match, the query returns the stored results and avoids execution
// altogether"). The admission/eviction policy follows the dynamic cache
// manager the paper cites [29] (Shim, Scheuermann, Vingralek — SSDBM 1999):
// entries are weighted by result computation cost, size and reference
// frequency, and evicted lowest-benefit-first.
//
// Entries are keyed by the plan's canonical signature — the same encoded
// argument list OSP uses — so a cache hit requires exact structural
// equality, and entries remember which base tables they read so updates
// invalidate them (the maintenance-cost dimension of [29]).
package qcache

import (
	"sync"
	"time"

	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// Stats snapshots cache counters.
type Stats struct {
	Hits         int64
	Misses       int64
	Insertions   int64
	Evictions    int64
	Invalidation int64
	Entries      int
	Tuples       int64
}

type entry struct {
	sig      string
	rows     []tuple.Tuple
	tables   []string
	cost     time.Duration // measured execution time (benefit numerator)
	size     int64         // tuples (benefit denominator)
	refs     int64
	lastUsed time.Time
}

// benefit is the [29]-style goodness metric: cost saved per tuple of cache
// space, scaled by observed reference frequency.
func (e *entry) benefit() float64 {
	sz := float64(e.size)
	if sz < 1 {
		sz = 1
	}
	return float64(e.cost) * float64(e.refs) / sz
}

// Cache is a bounded query-result cache. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64 // max cached tuples across all entries
	maxEntry int64 // max tuples for a single admitted result
	entries  map[string]*entry
	byTable  map[string]map[string]*entry
	tuples   int64
	now      func() time.Time

	hits, misses, inserts, evicts, invals int64
}

// New creates a cache bounded to capacity total tuples; single results
// larger than maxEntry tuples are never admitted (0 defaults to
// capacity/4).
func New(capacity, maxEntry int64) *Cache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if maxEntry <= 0 {
		maxEntry = capacity / 4
	}
	return &Cache{
		capacity: capacity,
		maxEntry: maxEntry,
		entries:  make(map[string]*entry),
		byTable:  make(map[string]map[string]*entry),
		now:      time.Now,
	}
}

// Get returns the cached result rows for a plan signature. The returned
// slice is shared — callers must not mutate tuples (Result wrappers clone
// on read).
func (c *Cache) Get(sig string) ([]tuple.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[sig]
	if !ok {
		c.misses++
		return nil, false
	}
	e.refs++
	e.lastUsed = c.now()
	c.hits++
	return e.rows, true
}

// GetCloned is Get with each row deep-copied: cached rows are shared by
// every past and future hit, so callers that hand rows to client code (the
// facade's Run/QueryCached paths, whose results are mutable by contract
// once materialized) must take clones, never the entries themselves.
func (c *Cache) GetCloned(sig string) ([]tuple.Tuple, bool) {
	rows, ok := c.Get(sig)
	if !ok {
		return nil, false
	}
	out := make([]tuple.Tuple, len(rows))
	for i, t := range rows {
		out[i] = t.Clone()
	}
	return out, true
}

// Put admits a completed query's result. tables lists the base relations
// the plan read (for invalidation); cost is the measured execution time.
// Oversized results are rejected.
func (c *Cache) Put(sig string, tables []string, rows []tuple.Tuple, cost time.Duration) bool {
	size := int64(len(rows))
	if size > c.maxEntry {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[sig]; dup {
		return false
	}
	// Evict lowest-benefit entries until the new result fits.
	for c.tuples+size > c.capacity {
		victim := c.lowestBenefitLocked()
		if victim == nil {
			return false
		}
		c.removeLocked(victim)
		c.evicts++
	}
	e := &entry{sig: sig, rows: rows, tables: tables, cost: cost, size: size, refs: 1, lastUsed: c.now()}
	c.entries[sig] = e
	for _, t := range tables {
		if c.byTable[t] == nil {
			c.byTable[t] = make(map[string]*entry)
		}
		c.byTable[t][sig] = e
	}
	c.tuples += size
	c.inserts++
	return true
}

func (c *Cache) lowestBenefitLocked() *entry {
	var victim *entry
	for _, e := range c.entries {
		if victim == nil || e.benefit() < victim.benefit() ||
			(e.benefit() == victim.benefit() && e.lastUsed.Before(victim.lastUsed)) {
			victim = e
		}
	}
	return victim
}

func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.sig)
	for _, t := range e.tables {
		delete(c.byTable[t], e.sig)
	}
	c.tuples -= e.size
}

// InvalidateTable drops every entry that read the given table (called on
// updates — cached results would otherwise serve stale data).
func (c *Cache) InvalidateTable(table string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.byTable[table] {
		c.removeLocked(e)
		n++
	}
	c.invals += int64(n)
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Insertions: c.inserts,
		Evictions: c.evicts, Invalidation: c.invals,
		Entries: len(c.entries), Tuples: c.tuples,
	}
}

// TablesOf walks a plan collecting the base tables it reads (the
// invalidation key set) — scans and index scans contribute; updates are
// writers, not readers.
func TablesOf(p plan.Node) []string {
	seen := make(map[string]bool)
	var out []string
	plan.Walk(p, func(n plan.Node) {
		var t string
		switch s := n.(type) {
		case *plan.TableScan:
			t = s.Table
		case *plan.IndexScan:
			t = s.Table
		default:
			return
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	})
	return out
}

// IsUpdate reports whether the plan contains a write (never cacheable, and
// triggers invalidation of its target table).
func IsUpdate(p plan.Node) (string, bool) {
	var table string
	found := false
	plan.Walk(p, func(n plan.Node) {
		if u, ok := n.(*plan.Update); ok {
			table, found = u.Table, true
		}
	})
	return table, found
}
