// Package wire defines QPipe's client/server wire protocol: length-prefixed
// binary frames carrying a small, versioned message set (startup handshake,
// query/prepare/execute, streaming row batches, completion, typed errors,
// server statistics).
//
// # Frame format
//
// Every message travels as one frame:
//
//	+----------------+-----------+------------------+
//	| length (u32 BE)| type (u8) | payload (length-1)|
//	+----------------+-----------+------------------+
//
// The length covers the type byte plus the payload, so an empty message is
// length 1. Frames larger than MaxFrameSize are rejected with a
// *ProtocolError before any allocation proportional to the claimed length.
//
// # Payload encoding
//
// Payload fields use the same primitives as the storage layer's tuple
// encoding: fixed 8-byte little-endian words for 64-bit integers, uvarints
// for counts, and uvarint-length-prefixed bytes for strings. Row batches
// embed rows in the exact binary form the page layer uses (tuple.Encode),
// so the server encodes result batches straight out of the engine's lease
// protocol without converting or copying per tuple.
//
// Malformed input of any shape — truncated frames, trailing bytes, bad kind
// tags, over-long claims — decodes to a typed *ProtocolError, never a panic
// (FuzzFrameDecode holds the whole decoder to that).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ProtocolVersion is the wire protocol's current version. The client sends
// its version in Hello; the server refuses mismatches in the handshake with
// a CodeProtocol error naming both versions.
const ProtocolVersion = 1

// MaxFrameSize bounds a single frame (type byte + payload). Frames claiming
// more are a protocol error: the reader rejects them without allocating.
const MaxFrameSize = 16 << 20

// MsgType identifies a frame's message.
type MsgType byte

// The message set. Lower-case values originate at the client, upper-case at
// the server (mnemonic only — the byte values are the protocol).
const (
	// MsgHello opens a connection: client → server, {version, client name}.
	MsgHello MsgType = 'h'
	// MsgWelcome accepts the handshake: server → client, {version, banner}.
	MsgWelcome MsgType = 'W'
	// MsgQuery submits one SQL statement: client → server, {sql, options}.
	MsgQuery MsgType = 'q'
	// MsgPrepare compiles a SELECT for reuse: client → server, {sql}.
	MsgPrepare MsgType = 'p'
	// MsgPrepared answers MsgPrepare: server → client, {id, schema}.
	MsgPrepared MsgType = 'P'
	// MsgExecute runs a prepared statement: client → server, {id, options}.
	MsgExecute MsgType = 'e'
	// MsgExec runs a DDL/INSERT script: client → server, {sql}.
	MsgExec MsgType = 'x'
	// MsgCloseStmt frees a prepared statement: client → server, {id}.
	MsgCloseStmt MsgType = 'f'
	// MsgRowDesc begins a result stream: server → client, {columns}.
	MsgRowDesc MsgType = 'D'
	// MsgRowBatch carries one batch of encoded rows: server → client.
	MsgRowBatch MsgType = 'B'
	// MsgComplete ends a successful request: server → client, {row count}.
	MsgComplete MsgType = 'C'
	// MsgError ends a failed request: server → client, {typed error}.
	MsgError MsgType = 'E'
	// MsgCancel aborts the in-flight query: client → server, empty.
	MsgCancel MsgType = 'c'
	// MsgStats requests server counters: client → server, empty.
	MsgStats MsgType = 's'
	// MsgStatsResult answers MsgStats: server → client, {named counters}.
	MsgStatsResult MsgType = 'S'
	// MsgQuit closes the connection cleanly: client → server, empty.
	MsgQuit MsgType = 'Q'
)

// String names the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgWelcome:
		return "Welcome"
	case MsgQuery:
		return "Query"
	case MsgPrepare:
		return "Prepare"
	case MsgPrepared:
		return "Prepared"
	case MsgExecute:
		return "Execute"
	case MsgExec:
		return "Exec"
	case MsgCloseStmt:
		return "CloseStmt"
	case MsgRowDesc:
		return "RowDesc"
	case MsgRowBatch:
		return "RowBatch"
	case MsgComplete:
		return "Complete"
	case MsgError:
		return "Error"
	case MsgCancel:
		return "Cancel"
	case MsgStats:
		return "Stats"
	case MsgStatsResult:
		return "StatsResult"
	case MsgQuit:
		return "Quit"
	default:
		return fmt.Sprintf("MsgType(0x%02x)", byte(t))
	}
}

// ProtocolError reports a violation of the wire protocol itself — a
// truncated or oversized frame, a malformed payload, an unexpected message
// for the connection's state. It is terminal for the connection: neither
// side can resynchronize a corrupt frame stream.
type ProtocolError struct {
	Reason string
}

// Error implements error.
func (e *ProtocolError) Error() string { return "qpipe/wire: protocol error: " + e.Reason }

func protoErrf(format string, args ...any) *ProtocolError {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// WriteFrame writes one frame. The payload may be nil for empty messages.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return protoErrf("frame too large to send: %d bytes (max %d)", len(payload)+1, MaxFrameSize)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, reusing buf for the payload when it fits (the
// returned slice aliases it, valid until the next call that reuses it).
// io.EOF surfaces unchanged only at a clean frame boundary; a connection
// dying mid-frame is an io.ErrUnexpectedEOF. Oversized and zero-length
// frames are a *ProtocolError.
func ReadFrame(r io.Reader, buf []byte) (MsgType, []byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, buf, protoErrf("zero-length frame")
	}
	if n > MaxFrameSize {
		return 0, nil, buf, protoErrf("frame of %d bytes exceeds the %d-byte limit", n, MaxFrameSize)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, buf, unexpectedEOF(err)
	}
	t := MsgType(hdr[4])
	body := int(n) - 1
	if body == 0 {
		return t, nil, buf, nil
	}
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	payload := buf[:body]
	if _, err := io.ReadFull(r, payload); err != nil {
		return t, nil, buf, unexpectedEOF(err)
	}
	return t, payload, buf, nil
}

// unexpectedEOF converts a mid-frame EOF into io.ErrUnexpectedEOF so callers
// can distinguish a clean close (between frames) from a truncated one.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
