// The wire form of the engine's typed error family. A MsgError frame
// carries an ErrCode plus the rendered message and a set of structured
// string fields — enough for the client side to reconstruct the exact
// exported error type (qpipe.MarshalWireError / qpipe.UnmarshalWireError do
// the mapping), so a remote caller's errors.As branches work unchanged
// against a server a network away.
package wire

import "sort"

// ErrCode identifies which typed error a MsgError carries.
type ErrCode uint16

// The error codes. CodeUnknown is the catch-all for server-side errors
// outside the typed family: the client surfaces them as opaque errors
// carrying the rendered message.
const (
	CodeUnknown ErrCode = iota
	// CodeProtocol: the peer violated the wire protocol (see ProtocolError).
	CodeProtocol
	// CodeClosed: the server is draining; new queries are rejected
	// (qpipe.ErrClosed).
	CodeClosed
	// CodeOverloaded: admission control shed the query, or the server's
	// connection limit refused the connection (*qpipe.OverloadedError).
	CodeOverloaded
	// CodeDeadline: the statement timeout or deadline expired
	// (*qpipe.DeadlineError).
	CodeDeadline
	// CodePanic: an operator panicked and was quarantined
	// (*qpipe.PanicError).
	CodePanic
	// CodeParse: the SQL text failed to parse (*sql.ParseError).
	CodeParse
	// CodeUnknownTable: a table the catalog does not know
	// (*qpipe.UnknownTableError).
	CodeUnknownTable
	// CodeUnknownColumn: a column that does not resolve
	// (*qpipe.UnknownColumnError).
	CodeUnknownColumn
	// CodeTypeMismatch: incompatible kinds in an expression
	// (*qpipe.TypeMismatchError).
	CodeTypeMismatch
	// CodeDuplicateColumn: duplicate output column
	// (*qpipe.DuplicateColumnError).
	CodeDuplicateColumn
	// CodeAmbiguousColumn: a reference more than one table owns
	// (*qpipe.AmbiguousColumnError).
	CodeAmbiguousColumn
	// CodeStatement: statement routed to the wrong entry point
	// (*qpipe.StatementError).
	CodeStatement
	// CodeOption: invalid or conflicting per-query option
	// (*qpipe.OptionError).
	CodeOption
	// CodeBatch: a batch submission failed (*qpipe.BatchError).
	CodeBatch
)

// Error is a typed engine error in transit. It implements error (rendering
// the original message) so an unmapped code still reads correctly; clients
// normally pass it through qpipe.UnmarshalWireError to get the concrete
// exported type back.
type Error struct {
	Code ErrCode
	// Msg is the original error's rendered text.
	Msg string
	// Fields carries the typed error's structured data (e.g. "table",
	// "max_concurrent") keyed by stable names.
	Fields map[string]string
}

// Error implements error.
func (e *Error) Error() string { return e.Msg }

// Field returns a structured field ("" when absent).
func (e *Error) Field(k string) string {
	if e.Fields == nil {
		return ""
	}
	return e.Fields[k]
}

// Encode appends the MsgError payload to dst. Fields are written in sorted
// key order so encoding is deterministic.
func (e *Error) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(e.Code))
	dst = appendString(dst, e.Msg)
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = appendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, e.Fields[k])
	}
	return dst
}

// DecodeError parses a MsgError payload.
func DecodeError(b []byte) (*Error, error) {
	r := payloadReader{b: b}
	e := &Error{Code: ErrCode(r.uvarint()), Msg: r.str()}
	n := r.count("error field")
	if r.err == nil && n > 0 {
		e.Fields = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := r.str()
			v := r.str()
			if r.err == nil {
				e.Fields[k] = v
			}
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}
