package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"qpipe/internal/tuple"
)

// FuzzFrameDecode drives the full read path — frame parsing plus every
// message decoder — over arbitrary byte streams. The invariant under test is
// the package guarantee: malformed input returns an error (usually a
// *ProtocolError), it never panics, and decoding never allocates
// proportionally to a hostile length claim.
func FuzzFrameDecode(f *testing.F) {
	// Seed with one valid frame per message type so the fuzzer starts from
	// well-formed streams and mutates toward the edges.
	seed := func(t MsgType, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, t, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(MsgHello, (&Hello{Version: ProtocolVersion, Client: "fuzz"}).Encode(nil))
	seed(MsgWelcome, (&Welcome{Version: ProtocolVersion, Banner: "qpipe"}).Encode(nil))
	seed(MsgQuery, (&Query{SQL: "SELECT a FROM t", Opts: ExecOpts{TimeoutMs: 100, Parallelism: 2, BatchSize: 64, NoOSP: true}}).Encode(nil))
	seed(MsgPrepare, (&Prepare{SQL: "SELECT 1"}).Encode(nil))
	seed(MsgPrepared, (&Prepared{ID: 1, Desc: RowDesc{Cols: []Col{{"a", tuple.KindInt}}}}).Encode(nil))
	seed(MsgExecute, (&Execute{ID: 1}).Encode(nil))
	seed(MsgExec, (&Exec{SQL: "CREATE TABLE t (a INT)"}).Encode(nil))
	seed(MsgCloseStmt, (&CloseStmt{ID: 1}).Encode(nil))
	seed(MsgRowDesc, (&RowDesc{Cols: []Col{{"a", tuple.KindInt}, {"s", tuple.KindString}}}).Encode(nil))
	seed(MsgRowBatch, AppendRowBatch(nil, []Row{
		{tuple.I64(7), tuple.Str("x"), tuple.F64(1.5), tuple.Date(20_000)},
	}))
	seed(MsgComplete, (&Complete{Rows: 42}).Encode(nil))
	seed(MsgError, (&Error{Code: CodeOverloaded, Msg: "shed", Fields: map[string]string{"max_concurrent": "8"}}).Encode(nil))
	seed(MsgStatsResult, (&StatsResult{Stats: []Stat{{"queries_served", 3}}}).Encode(nil))
	seed(MsgCancel, nil)
	seed(MsgQuit, nil)
	// And two frames back to back, to exercise stream resumption.
	var two bytes.Buffer
	_ = WriteFrame(&two, MsgStats, nil)
	_ = WriteFrame(&two, MsgQuit, nil)
	f.Add(two.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			mt, payload, b, err := ReadFrame(r, buf)
			buf = b
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					var pe *ProtocolError
					if !errors.As(err, &pe) {
						t.Fatalf("ReadFrame: unexpected error type %T: %v", err, err)
					}
				}
				return
			}
			if msg, err := DecodeMessage(mt, payload); err != nil {
				var pe *ProtocolError
				if !errors.As(err, &pe) {
					t.Fatalf("DecodeMessage(%s): unexpected error type %T: %v", mt, err, err)
				}
			} else if mt == MsgRowBatch {
				// A batch that decoded must re-encode to the same bytes.
				rows, ok := msg.([]Row)
				if !ok {
					t.Fatalf("RowBatch decoded to %T", msg)
				}
				if re := AppendRowBatch(nil, rows); !bytes.Equal(re, payload) {
					t.Fatalf("RowBatch did not round-trip:\n in: %x\nout: %x", payload, re)
				}
			}
		}
	})
}
