package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"qpipe/internal/tuple"
)

// writeFrameBytes renders one frame to a byte slice.
func writeFrameBytes(t *testing.T, mt MsgType, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, mt, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		mt      MsgType
		payload []byte
	}{
		{MsgQuit, nil},
		{MsgCancel, []byte{}},
		{MsgQuery, []byte("hello world")},
		{MsgRowBatch, bytes.Repeat([]byte{0xAB}, 100_000)},
	}
	var scratch []byte
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, tc.mt, tc.payload); err != nil {
			t.Fatal(err)
		}
		mt, payload, s, err := ReadFrame(&buf, scratch)
		scratch = s
		if err != nil {
			t.Fatalf("%s: %v", tc.mt, err)
		}
		if mt != tc.mt {
			t.Fatalf("type %s, want %s", mt, tc.mt)
		}
		if len(payload) != len(tc.payload) || (len(payload) > 0 && !bytes.Equal(payload, tc.payload)) {
			t.Fatalf("%s: payload mismatch (%d bytes vs %d)", tc.mt, len(payload), len(tc.payload))
		}
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	_, _, _, err := ReadFrame(bytes.NewReader(nil), nil)
	if err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := writeFrameBytes(t, MsgQuery, []byte("SELECT 1"))
	for cut := 1; cut < len(full); cut++ {
		_, _, _, err := ReadFrame(bytes.NewReader(full[:cut]), nil)
		if err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if err == io.EOF && cut >= 4 {
			// Once the length header is complete, a truncation must NOT look
			// like a clean close.
			t.Fatalf("cut at %d: clean io.EOF for a truncated frame", cut)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	_, _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *ProtocolError", err)
	}
}

func TestReadFrameZeroLength(t *testing.T) {
	_, _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *ProtocolError", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	cases := []struct {
		name    string
		mt      MsgType
		payload []byte
		want    any
	}{
		{"hello", MsgHello, (&Hello{Version: 1, Client: "qpipe-shell"}).Encode(nil),
			Hello{Version: 1, Client: "qpipe-shell"}},
		{"welcome", MsgWelcome, (&Welcome{Version: 1, Banner: "qpipe-server"}).Encode(nil),
			Welcome{Version: 1, Banner: "qpipe-server"}},
		{"query", MsgQuery, (&Query{SQL: "SELECT 1", Opts: ExecOpts{TimeoutMs: 500, Parallelism: 4, BatchSize: 128, NoOSP: true}}).Encode(nil),
			Query{SQL: "SELECT 1", Opts: ExecOpts{TimeoutMs: 500, Parallelism: 4, BatchSize: 128, NoOSP: true}}},
		{"prepare", MsgPrepare, (&Prepare{SQL: "SELECT a FROM t"}).Encode(nil),
			Prepare{SQL: "SELECT a FROM t"}},
		{"prepared", MsgPrepared, (&Prepared{ID: 7, Desc: RowDesc{Cols: []Col{{"a", tuple.KindInt}, {"b", tuple.KindString}}}}).Encode(nil),
			Prepared{ID: 7, Desc: RowDesc{Cols: []Col{{"a", tuple.KindInt}, {"b", tuple.KindString}}}}},
		{"execute", MsgExecute, (&Execute{ID: 7, Opts: ExecOpts{Parallelism: 2}}).Encode(nil),
			Execute{ID: 7, Opts: ExecOpts{Parallelism: 2}}},
		{"exec", MsgExec, (&Exec{SQL: "CREATE TABLE t (a INT)"}).Encode(nil),
			Exec{SQL: "CREATE TABLE t (a INT)"}},
		{"closestmt", MsgCloseStmt, (&CloseStmt{ID: 9}).Encode(nil), CloseStmt{ID: 9}},
		{"rowdesc", MsgRowDesc, (&RowDesc{Cols: []Col{{"n", tuple.KindFloat}}}).Encode(nil),
			RowDesc{Cols: []Col{{"n", tuple.KindFloat}}}},
		{"rowdesc-empty", MsgRowDesc, (&RowDesc{}).Encode(nil), RowDesc{}},
		{"complete", MsgComplete, (&Complete{Rows: -3}).Encode(nil), Complete{Rows: -3}},
		{"stats", MsgStatsResult, (&StatsResult{Stats: []Stat{{"queries", 12}, {"shares", -1}}}).Encode(nil),
			StatsResult{Stats: []Stat{{"queries", 12}, {"shares", -1}}}},
	}
	for _, tc := range cases {
		got, err := DecodeMessage(tc.mt, tc.payload)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestRowBatchRoundTrip(t *testing.T) {
	rows := []Row{
		{tuple.I64(1), tuple.Str("x"), tuple.F64(2.5), tuple.Date(42)},
		{tuple.I64(-9), tuple.Str(""), tuple.F64(-0.0), tuple.Date(0)},
	}
	payload := AppendRowBatch(nil, rows)
	var arena tuple.RowArena
	got, err := DecodeRowBatch(payload, &arena)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("got %v, want %v", got, rows)
	}
	// Ragged batches round-trip too: each row carries its own width.
	ragged := []Row{{tuple.I64(1)}, {tuple.I64(1), tuple.Str("two")}}
	got, err = DecodeRowBatch(AppendRowBatch(nil, ragged), &arena)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ragged) {
		t.Fatalf("ragged: got %v, want %v", got, ragged)
	}
	// Empty batch.
	got, err = DecodeRowBatch(AppendRowBatch(nil, nil), &arena)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: got %v, %v", got, err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &Error{
		Code: CodeUnknownColumn,
		Msg:  `qpipe: unknown column "x"`,
		Fields: map[string]string{
			"column": "x",
			"schema": "[a:int, b:string]",
		},
	}
	got, err := DecodeError(e.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("got %+v, want %+v", got, e)
	}
	if got.Field("column") != "x" || got.Field("missing") != "" {
		t.Fatalf("Field lookups wrong: %+v", got)
	}
	// No fields.
	bare := &Error{Code: CodeClosed, Msg: "closed"}
	got, err = DecodeError(bare.Encode(nil))
	if err != nil || got.Code != CodeClosed || got.Msg != "closed" || len(got.Fields) != 0 {
		t.Fatalf("bare: got %+v, %v", got, err)
	}
}

// TestDecodersRejectMalformed drives every decoder over truncations and
// trailing garbage: all must return *ProtocolError, never panic, never
// succeed.
func TestDecodersRejectMalformed(t *testing.T) {
	payloads := map[MsgType][]byte{
		MsgHello:       (&Hello{Version: 1, Client: "c"}).Encode(nil),
		MsgWelcome:     (&Welcome{Version: 1, Banner: "b"}).Encode(nil),
		MsgQuery:       (&Query{SQL: "SELECT 1", Opts: ExecOpts{TimeoutMs: 9}}).Encode(nil),
		MsgPrepare:     (&Prepare{SQL: "SELECT 1"}).Encode(nil),
		MsgPrepared:    (&Prepared{ID: 3, Desc: RowDesc{Cols: []Col{{"a", tuple.KindInt}}}}).Encode(nil),
		MsgExecute:     (&Execute{ID: 3}).Encode(nil),
		MsgExec:        (&Exec{SQL: "CREATE TABLE t (a INT)"}).Encode(nil),
		MsgCloseStmt:   (&CloseStmt{ID: 3}).Encode(nil),
		MsgRowDesc:     (&RowDesc{Cols: []Col{{"a", tuple.KindInt}}}).Encode(nil),
		MsgRowBatch:    AppendRowBatch(nil, []Row{{tuple.I64(1), tuple.Str("s")}}),
		MsgComplete:    (&Complete{Rows: 5}).Encode(nil),
		MsgError:       (&Error{Code: CodeParse, Msg: "m", Fields: map[string]string{"k": "v"}}).Encode(nil),
		MsgStatsResult: (&StatsResult{Stats: []Stat{{"queries", 1}}}).Encode(nil),
	}
	for mt, good := range payloads {
		if _, err := DecodeMessage(mt, good); err != nil {
			t.Fatalf("%s: good payload rejected: %v", mt, err)
		}
		for cut := 0; cut < len(good); cut++ {
			if _, err := DecodeMessage(mt, good[:cut]); err == nil {
				t.Fatalf("%s truncated at %d: decoder accepted it", mt, cut)
			} else if pe := (*ProtocolError)(nil); !errors.As(err, &pe) {
				t.Fatalf("%s truncated at %d: %T, want *ProtocolError", mt, cut, err)
			}
		}
		trailing := append(append([]byte(nil), good...), 0xFF)
		if _, err := DecodeMessage(mt, trailing); err == nil {
			t.Fatalf("%s with trailing byte: decoder accepted it", mt)
		}
	}
	// Payload-less messages must reject payloads.
	for _, mt := range []MsgType{MsgCancel, MsgStats, MsgQuit} {
		if _, err := DecodeMessage(mt, []byte{1}); err == nil {
			t.Fatalf("%s with payload: accepted", mt)
		}
	}
	if _, err := DecodeMessage(MsgType(0xEE), nil); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

// TestRowBatchHostileCounts pins the allocation bound: a payload claiming
// billions of rows or columns in a few bytes must fail fast, not allocate.
func TestRowBatchHostileCounts(t *testing.T) {
	var arena tuple.RowArena
	huge := appendUvarint(nil, 1<<40) // row count with no rows behind it
	if _, err := DecodeRowBatch(huge, &arena); err == nil {
		t.Fatal("hostile row count accepted")
	}
	one := appendUvarint(nil, 1)
	one = appendUvarint(one, 1<<40) // column count
	if _, err := DecodeRowBatch(one, &arena); err == nil {
		t.Fatal("hostile column count accepted")
	}
}
