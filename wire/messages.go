// Message payload encodings. Every message is a struct with an Encode method
// (appending to a caller-supplied buffer, so a connection can reuse one
// scratch buffer for all its frames) and a Decode* function returning a
// *ProtocolError on any malformed input. Decoders require the payload to be
// consumed exactly: trailing bytes are as much a protocol error as missing
// ones.
package wire

import (
	"encoding/binary"

	"qpipe/internal/tuple"
)

// Row is one result row on the wire — an alias of the engine's tuple type,
// so server-side encoding works directly on result batches and client-side
// decoding produces rows interchangeable with the embedded API's.
type Row = tuple.Tuple

// ---- Encoding primitives -----------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// payloadReader decodes primitives with sticky error state; done() enforces
// full consumption.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = protoErrf(format, args...)
	}
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or malformed uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated u64 at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) str() string {
	if r.err != nil {
		return ""
	}
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string of %d bytes overruns payload at offset %d", n, r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *payloadReader) boolean() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail("truncated bool at offset %d", r.off)
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.fail("bad bool byte 0x%02x at offset %d", v, r.off-1)
		return false
	}
	return v == 1
}

// count reads a uvarint that sizes a following collection and sanity-bounds
// it against the remaining payload (each element needs at least one byte),
// so a hostile length claim cannot drive a huge allocation.
func (r *payloadReader) count(what string) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("%s count %d exceeds remaining payload (%d bytes)", what, n, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

func (r *payloadReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return protoErrf("%d trailing bytes after message payload", len(r.b)-r.off)
	}
	return nil
}

// ---- Handshake ---------------------------------------------------------------

// Hello is the client's opening message.
type Hello struct {
	// Version is the client's ProtocolVersion.
	Version uint32
	// Client names the connecting program (diagnostics only).
	Client string
}

// Encode appends the payload to dst.
func (m *Hello) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(m.Version))
	return appendString(dst, m.Client)
}

// DecodeHello parses a MsgHello payload.
func DecodeHello(b []byte) (Hello, error) {
	r := payloadReader{b: b}
	m := Hello{Version: uint32(r.uvarint()), Client: r.str()}
	return m, r.done()
}

// Welcome is the server's handshake acceptance.
type Welcome struct {
	// Version is the protocol version the server will speak (equal to the
	// client's — mismatches are refused with an error, not negotiated down).
	Version uint32
	// Banner identifies the server (diagnostics only).
	Banner string
}

// Encode appends the payload to dst.
func (m *Welcome) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(m.Version))
	return appendString(dst, m.Banner)
}

// DecodeWelcome parses a MsgWelcome payload.
func DecodeWelcome(b []byte) (Welcome, error) {
	r := payloadReader{b: b}
	m := Welcome{Version: uint32(r.uvarint()), Banner: r.str()}
	return m, r.done()
}

// ---- Requests ----------------------------------------------------------------

// ExecOpts carries the per-query execution options across the wire — the
// subset of the embedded API's functional options that make sense remotely.
// Zero values inherit the server session's (and then the engine's) defaults.
type ExecOpts struct {
	// TimeoutMs is the statement timeout in milliseconds (0 = session
	// default).
	TimeoutMs uint64
	// Parallelism is the intra-operator fan-out (0 = session default).
	Parallelism uint32
	// BatchSize is the tuples-per-batch target (0 = session default).
	BatchSize uint32
	// NoOSP opts the query out of on-demand simultaneous pipelining.
	NoOSP bool
}

func (o *ExecOpts) encode(dst []byte) []byte {
	dst = appendUvarint(dst, o.TimeoutMs)
	dst = appendUvarint(dst, uint64(o.Parallelism))
	dst = appendUvarint(dst, uint64(o.BatchSize))
	return appendBool(dst, o.NoOSP)
}

func (r *payloadReader) execOpts() ExecOpts {
	return ExecOpts{
		TimeoutMs:   r.uvarint(),
		Parallelism: uint32(r.uvarint()),
		BatchSize:   uint32(r.uvarint()),
		NoOSP:       r.boolean(),
	}
}

// Query submits one SQL statement (SELECT, EXPLAIN, or SET — the server's
// per-connection session absorbs SET and answers with a bare Complete).
type Query struct {
	SQL  string
	Opts ExecOpts
}

// Encode appends the payload to dst.
func (m *Query) Encode(dst []byte) []byte {
	dst = appendString(dst, m.SQL)
	return m.Opts.encode(dst)
}

// DecodeQuery parses a MsgQuery payload.
func DecodeQuery(b []byte) (Query, error) {
	r := payloadReader{b: b}
	m := Query{SQL: r.str(), Opts: r.execOpts()}
	return m, r.done()
}

// Prepare compiles a SELECT server-side for repeated execution.
type Prepare struct {
	SQL string
}

// Encode appends the payload to dst.
func (m *Prepare) Encode(dst []byte) []byte { return appendString(dst, m.SQL) }

// DecodePrepare parses a MsgPrepare payload.
func DecodePrepare(b []byte) (Prepare, error) {
	r := payloadReader{b: b}
	m := Prepare{SQL: r.str()}
	return m, r.done()
}

// Execute runs a previously prepared statement.
type Execute struct {
	ID   uint32
	Opts ExecOpts
}

// Encode appends the payload to dst.
func (m *Execute) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(m.ID))
	return m.Opts.encode(dst)
}

// DecodeExecute parses a MsgExecute payload.
func DecodeExecute(b []byte) (Execute, error) {
	r := payloadReader{b: b}
	m := Execute{ID: uint32(r.uvarint()), Opts: r.execOpts()}
	return m, r.done()
}

// Exec runs a SQL script of row-less statements (DDL, INSERT, ANALYZE).
type Exec struct {
	SQL string
}

// Encode appends the payload to dst.
func (m *Exec) Encode(dst []byte) []byte { return appendString(dst, m.SQL) }

// DecodeExec parses a MsgExec payload.
func DecodeExec(b []byte) (Exec, error) {
	r := payloadReader{b: b}
	m := Exec{SQL: r.str()}
	return m, r.done()
}

// CloseStmt frees a prepared statement's server-side resources.
type CloseStmt struct {
	ID uint32
}

// Encode appends the payload to dst.
func (m *CloseStmt) Encode(dst []byte) []byte { return appendUvarint(dst, uint64(m.ID)) }

// DecodeCloseStmt parses a MsgCloseStmt payload.
func DecodeCloseStmt(b []byte) (CloseStmt, error) {
	r := payloadReader{b: b}
	m := CloseStmt{ID: uint32(r.uvarint())}
	return m, r.done()
}

// ---- Responses ---------------------------------------------------------------

// Col is one result column in a RowDesc.
type Col struct {
	Name string
	Kind tuple.Kind
}

// RowDesc announces a result stream's schema. Its column count also tells
// the client how many values each row in the following RowBatch frames
// carries.
type RowDesc struct {
	Cols []Col
}

// Encode appends the payload to dst.
func (m *RowDesc) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(m.Cols)))
	for _, c := range m.Cols {
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Kind))
	}
	return dst
}

// DecodeRowDesc parses a MsgRowDesc payload.
func DecodeRowDesc(b []byte) (RowDesc, error) {
	r := payloadReader{b: b}
	n := r.count("column")
	m := RowDesc{}
	if r.err == nil && n > 0 {
		m.Cols = make([]Col, n)
		for i := range m.Cols {
			m.Cols[i].Name = r.str()
			if r.err == nil {
				if r.off >= len(r.b) {
					r.fail("truncated column kind at offset %d", r.off)
				} else {
					m.Cols[i].Kind = tuple.Kind(r.b[r.off])
					r.off++
				}
			}
		}
	}
	return m, r.done()
}

// Prepared answers a Prepare with the statement's handle and schema.
type Prepared struct {
	ID   uint32
	Desc RowDesc
}

// Encode appends the payload to dst.
func (m *Prepared) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(m.ID))
	return m.Desc.Encode(dst)
}

// DecodePrepared parses a MsgPrepared payload.
func DecodePrepared(b []byte) (Prepared, error) {
	r := payloadReader{b: b}
	m := Prepared{ID: uint32(r.uvarint())}
	if r.err != nil {
		return m, r.done()
	}
	desc, err := DecodeRowDesc(r.b[r.off:])
	if err != nil {
		return m, err
	}
	m.Desc = desc
	r.off = len(r.b)
	return m, r.done()
}

// AppendRowBatch encodes a batch of rows as a MsgRowBatch payload, appending
// to dst: a uvarint row count, then each row in the storage layer's tuple
// encoding. The rows are read, never retained — safe on leased batch arrays.
func AppendRowBatch(dst []byte, rows []Row) []byte {
	dst = appendUvarint(dst, uint64(len(rows)))
	for _, row := range rows {
		dst = appendUvarint(dst, uint64(len(row)))
		dst = row.Encode(dst)
	}
	return dst
}

// DecodeRowBatch parses a MsgRowBatch payload. Row arrays are carved from
// the arena in bulk (one chunk allocation per batch, not per row).
func DecodeRowBatch(b []byte, arena *tuple.RowArena) ([]Row, error) {
	r := payloadReader{b: b}
	n := r.count("row")
	if r.err != nil {
		return nil, r.err
	}
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		ncols := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if ncols > uint64(len(r.b)-r.off) {
			return nil, protoErrf("row %d claims %d columns with %d bytes left", i, ncols, len(r.b)-r.off)
		}
		row, used, err := tuple.DecodeArena(r.b[r.off:], int(ncols), arena)
		if err != nil {
			return nil, protoErrf("row %d: %v", i, err)
		}
		r.off += used
		rows = append(rows, row)
	}
	return rows, r.done()
}

// Complete ends a successful request.
type Complete struct {
	// Rows is the number of result rows streamed (Query/Execute) or affected
	// (Exec).
	Rows int64
}

// Encode appends the payload to dst.
func (m *Complete) Encode(dst []byte) []byte { return appendU64(dst, uint64(m.Rows)) }

// DecodeComplete parses a MsgComplete payload.
func DecodeComplete(b []byte) (Complete, error) {
	r := payloadReader{b: b}
	m := Complete{Rows: int64(r.u64())}
	return m, r.done()
}

// Stat is one named server counter.
type Stat struct {
	Name  string
	Value int64
}

// StatsResult answers MsgStats with named counters. Names, not positions,
// are the contract — servers may add counters without a version bump.
type StatsResult struct {
	Stats []Stat
}

// Encode appends the payload to dst.
func (m *StatsResult) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(m.Stats)))
	for _, s := range m.Stats {
		dst = appendString(dst, s.Name)
		dst = appendU64(dst, uint64(s.Value))
	}
	return dst
}

// DecodeStatsResult parses a MsgStatsResult payload.
func DecodeStatsResult(b []byte) (StatsResult, error) {
	r := payloadReader{b: b}
	n := r.count("stat")
	m := StatsResult{}
	if r.err == nil && n > 0 {
		m.Stats = make([]Stat, n)
		for i := range m.Stats {
			m.Stats[i].Name = r.str()
			m.Stats[i].Value = int64(r.u64())
		}
	}
	return m, r.done()
}

// ---- Fuzzing hook ------------------------------------------------------------

// DecodeMessage dispatches a payload to the decoder for its message type —
// the single entry point FuzzFrameDecode drives, and a convenience for
// loops that switch on the frame type anyway. Types without a payload
// (Cancel, Stats, Quit) require an empty payload. Unknown types are a
// *ProtocolError.
func DecodeMessage(t MsgType, payload []byte) (any, error) {
	switch t {
	case MsgHello:
		return DecodeHello(payload)
	case MsgWelcome:
		return DecodeWelcome(payload)
	case MsgQuery:
		return DecodeQuery(payload)
	case MsgPrepare:
		return DecodePrepare(payload)
	case MsgPrepared:
		return DecodePrepared(payload)
	case MsgExecute:
		return DecodeExecute(payload)
	case MsgExec:
		return DecodeExec(payload)
	case MsgCloseStmt:
		return DecodeCloseStmt(payload)
	case MsgRowDesc:
		return DecodeRowDesc(payload)
	case MsgRowBatch:
		var arena tuple.RowArena
		return DecodeRowBatch(payload, &arena)
	case MsgComplete:
		return DecodeComplete(payload)
	case MsgError:
		return DecodeError(payload)
	case MsgStatsResult:
		return DecodeStatsResult(payload)
	case MsgCancel, MsgStats, MsgQuit:
		if len(payload) != 0 {
			return nil, protoErrf("%s carries no payload, got %d bytes", t, len(payload))
		}
		return nil, nil
	default:
		return nil, protoErrf("unknown message type 0x%02x", byte(t))
	}
}
