// Functional per-query options. Options travel with the query through the
// engine (core.QueryOptions) instead of being scattered across plan-node
// methods and the global Config, so concurrent queries on one DB can run
// with different parallelism, batch size, OSP participation and caching.
package qpipe

import (
	"time"

	"qpipe/internal/core"
)

// QueryOption tunes the execution of a single Run/RunBatch call.
type QueryOption func(*queryOpts)

type queryOpts struct {
	core core.QueryOptions

	useCache   bool
	sharedScan bool

	// validation bookkeeping (checked in resolve)
	badPar      bool
	badBatch    bool
	badTimeout  bool
	badDeadline bool
}

// WithParallelism sets the intra-operator fan-out for every operator of this
// query (partitioned scans, hash-join build/probe, group-by and aggregate
// workers). 1 is serial. Per-node plan hints still take precedence. Values
// below 1 yield an *OptionError at Run.
func WithParallelism(n int) QueryOption {
	return func(o *queryOpts) {
		o.core.Parallelism = n
		o.badPar = n < 1
	}
}

// WithoutOSP opts this query out of on-demand simultaneous pipelining in
// both directions: it neither attaches to in-progress work of other queries
// nor hosts their satellites. This is the per-query "Baseline" switch.
func WithoutOSP() QueryOption {
	return func(o *queryOpts) { o.core.DisableOSP = true }
}

// WithSharedScan declares that the query expects to piggyback on in-progress
// scans of its tables (the paper's circular-scan sharing). Sharing is always
// on when OSP is — the option exists to make the expectation explicit, and
// to reject the contradictory combination with WithoutOSP as an
// *OptionError instead of silently never sharing.
func WithSharedScan() QueryOption {
	return func(o *queryOpts) { o.sharedScan = true }
}

// WithBatchSize sets the tuples-per-batch target this query's operators aim
// for when producing output (smaller batches lower latency to first row;
// larger batches amortize synchronization). Values below 1 yield an
// *OptionError at Run.
func WithBatchSize(n int) QueryOption {
	return func(o *queryOpts) {
		o.core.BatchSize = n
		o.badBatch = n < 1
	}
}

// WithResultCache routes the query through the DB's result cache: a
// signature-exact hit returns the stored rows without executing; a miss
// executes (still sharing via OSP), materializes, and admits the result.
// Requires a cache configured via Options.ResultCacheTuples; combining with
// Limit is rejected (the cache stores complete results).
func WithResultCache() QueryOption {
	return func(o *queryOpts) { o.useCache = true }
}

// WithTimeout bounds the query's execution to a relative budget measured
// from submission — the statement timeout. A query that exceeds it fails
// with a typed *DeadlineError (errors.Is-matching context.DeadlineExceeded),
// torn down exactly like a cancellation: buffers abandoned, satellites of
// the timed-out host rescued, no hang, no silent truncation. Combines with
// WithDeadline and the caller's context; the earliest instant wins. Values
// <= 0 yield an *OptionError at Run.
func WithTimeout(d time.Duration) QueryOption {
	return func(o *queryOpts) {
		o.core.Timeout = d
		o.badTimeout = d <= 0
	}
}

// WithDeadline bounds the query's execution to an absolute instant (see
// WithTimeout for semantics). A zero time yields an *OptionError at Run.
func WithDeadline(t time.Time) QueryOption {
	return func(o *queryOpts) {
		o.core.Deadline = t
		o.badDeadline = t.IsZero()
	}
}

// resolve folds the options and validates values and combinations, returning
// a distinct *OptionError per failure mode.
func resolveOpts(opts []QueryOption) (queryOpts, error) {
	var o queryOpts
	for _, fn := range opts {
		fn(&o)
	}
	switch {
	case o.badPar:
		return o, &OptionError{Option: "WithParallelism", Reason: "parallelism must be >= 1"}
	case o.badBatch:
		return o, &OptionError{Option: "WithBatchSize", Reason: "batch size must be >= 1"}
	case o.badTimeout:
		return o, &OptionError{Option: "WithTimeout", Reason: "timeout must be > 0"}
	case o.badDeadline:
		return o, &OptionError{Option: "WithDeadline", Reason: "deadline must be non-zero"}
	case o.sharedScan && o.core.DisableOSP:
		return o, &OptionError{Option: "WithSharedScan", Reason: "conflicts with WithoutOSP: scan sharing is an OSP mechanism"}
	}
	return o, nil
}
