package qpipe

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"
)

// Kill-9 chaos test: a real child process commits transactions against a
// durable database (Options.Dir — real fsynced files) and is killed with
// SIGKILL mid-workload, wherever it happens to be. The parent then reopens
// the directory and requires recovery to land on an exact committed prefix:
// every transaction the child acknowledged on stdout before the kill is
// fully present, later transactions are fully present or fully absent, and
// nothing is torn. This is the unsimulated counterpart of the crash-point
// matrix in internal/storage/wal/crashtest.

// Geometry shared by child and parent: the backing files are raw block
// images, so both processes must agree on the block size.
const (
	crashChildEnv   = "QPIPE_CRASH_CHILD"
	crashDirEnv     = "QPIPE_CRASH_DIR"
	crashBlockSize  = 512
	crashSegBlocks  = 8
	crashRowsPerTx  = 3
	crashKillAfter  = 8 // acknowledged commits before the parent pulls the trigger
	crashChildLimit = 30 * time.Second
)

// TestCrashKill9Child is the workload process. It only runs when re-executed
// by TestCrashKill9 (env-gated); in a normal test run it skips.
func TestCrashKill9Child(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("child process for TestCrashKill9")
	}
	dir := os.Getenv(crashDirEnv)
	db, err := Open(Options{Dir: dir, BlockSize: crashBlockSize, WALSegmentBlocks: crashSegBlocks, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("kt", NewSchema(ColDef("id", KindInt), ColDef("name", KindString))); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Commit forever (the parent kills us): transaction i inserts rows
	// i*10+{0,1,2} and rewrites the first row of the previous transaction,
	// acknowledging each commit on stdout. Direct writes to os.Stdout are
	// not buffered by the testing framework, so the parent sees each line
	// as soon as the commit is durable.
	start := time.Now()
	for i := 0; time.Since(start) < crashChildLimit; i++ {
		tx := db.Begin()
		script := fmt.Sprintf("INSERT INTO kt VALUES (%d, 'c'), (%d, 'c'), (%d, 'c')",
			i*10, i*10+1, i*10+2)
		if i > 0 {
			script += fmt.Sprintf("; UPDATE kt SET name = 'u' WHERE id = %d", (i-1)*10)
		}
		if _, err := tx.Exec(ctx, script); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("QPIPE-COMMIT %d\n", i)
	}
	t.Fatal("child was never killed")
}

func TestCrashKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashKill9Child$")
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Watchdog: whatever happens, the child dies.
	stopWatch := time.AfterFunc(crashChildLimit+30*time.Second, func() { _ = cmd.Process.Kill() })
	defer stopWatch.Stop()

	// Read acknowledgements until enough commits landed, then SIGKILL the
	// child wherever it is — possibly mid-commit, mid-fsync, mid-rotation.
	lastAcked := -1
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		var i int
		if _, err := fmt.Sscanf(sc.Text(), "QPIPE-COMMIT %d", &i); err == nil {
			lastAcked = i
			if i+1 >= crashKillAfter {
				if err := cmd.Process.Kill(); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	for sc.Scan() {
	} // drain until the pipe closes
	_ = cmd.Wait() // "signal: killed" is the expected outcome
	if lastAcked+1 < crashKillAfter {
		t.Fatalf("child exited after only %d commits:\n%s", lastAcked+1, stderr.String())
	}

	// Reopen: recovery must reproduce an exact committed prefix.
	db, err := Open(Options{Dir: dir, BlockSize: crashBlockSize, WALSegmentBlocks: crashSegBlocks, PoolPages: 64})
	if err != nil {
		t.Fatalf("reopening after kill: %v", err)
	}
	defer db.Close()
	res, err := db.Query(context.Background(), "SELECT id, name FROM kt")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int64]string, len(rows))
	m := -1 // highest transaction index with any surviving row
	for _, r := range rows {
		byID[r[0].I] = r[1].S
		if tx := int(r[0].I / 10); tx > m {
			m = tx
		}
	}
	if m < lastAcked {
		t.Fatalf("acknowledged transaction %d lost: recovered only through %d", lastAcked, m)
	}
	if len(byID) != crashRowsPerTx*(m+1) {
		t.Fatalf("recovered %d rows, want %d (complete transactions 0..%d)",
			len(byID), crashRowsPerTx*(m+1), m)
	}
	for i := 0; i <= m; i++ {
		for j := 0; j < crashRowsPerTx; j++ {
			id := int64(i*10 + j)
			want := "c"
			if j == 0 && i < m {
				want = "u" // rewritten by transaction i+1
			}
			if got, ok := byID[id]; !ok || got != want {
				t.Fatalf("transaction %d torn: row id=%d got %q/%v, want %q",
					i, id, got, ok, want)
			}
		}
	}
}
