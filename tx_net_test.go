// Remote transactions: BEGIN/COMMIT/ROLLBACK over the wire, exercised
// through the real client/server stack. External test package (imports
// qpipe/client, which imports qpipe back).
package qpipe_test

import (
	"context"
	"strings"
	"testing"

	"qpipe"
	"qpipe/client"
)

func connCount(t *testing.T, conn *client.Conn, query string) int64 {
	t.Helper()
	rows, err := conn.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	all, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	return all[0][0].I
}

func TestRemoteTransactions(t *testing.T) {
	_, _, addr := startServer(t, 100, qpipe.Options{}, qpipe.ServerOptions{})
	ctx := context.Background()
	conn, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Rollback: staged mutations vanish.
	if err := conn.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if n, err := conn.Exec(ctx, "INSERT INTO t VALUES (5000, 0, 1.5, 'tx'); DELETE FROM t WHERE id < 10"); err != nil || n != 11 {
		t.Fatalf("staged script: n=%d err=%v", n, err)
	}
	// SELECT over the written table inside the transaction is the typed
	// conflict, surfaced across the wire.
	if _, err := conn.Query(ctx, "SELECT count(*) FROM t"); err == nil ||
		!strings.Contains(err.Error(), "inside the transaction") {
		t.Fatalf("in-tx read of written table: got %v", err)
	}
	if err := conn.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if got := connCount(t, conn, "SELECT count(*) FROM t"); got != 100 {
		t.Fatalf("rollback leaked: %d rows, want 100", got)
	}

	// Commit: the whole script lands atomically.
	if err := conn.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(ctx, "INSERT INTO t VALUES (5000, 0, 1.5, 'tx'); UPDATE t SET note = 'kept' WHERE id = 5000"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := connCount(t, conn, "SELECT count(*) FROM t WHERE note = 'kept'"); got != 1 {
		t.Fatalf("committed row missing: %d", got)
	}

	// Transaction-state errors round-trip.
	if err := conn.Commit(ctx); err == nil || !strings.Contains(err.Error(), "no transaction is open") {
		t.Fatalf("stray COMMIT: got %v", err)
	}
	if err := conn.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := conn.Begin(ctx); err == nil || !strings.Contains(err.Error(), "already open") {
		t.Fatalf("double BEGIN: got %v", err)
	}
	if err := conn.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteTxDisconnectRollsBack: a client that vanishes mid-transaction
// must not leave the table locked or its staged writes half-visible — the
// server's session teardown rolls the transaction back.
func TestRemoteTxDisconnectRollsBack(t *testing.T) {
	_, _, addr := startServer(t, 100, qpipe.Options{}, qpipe.ServerOptions{})
	ctx := context.Background()

	conn1, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn1.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := conn1.Exec(ctx, "INSERT INTO t VALUES (7000, 0, 1.0, 'orphan')"); err != nil {
		t.Fatal(err)
	}
	// The transaction now holds t's exclusive lock. Drop the connection.
	conn1.Close()

	conn2, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	// This write queues on the lock until the server tears the dead session
	// down; completing at all proves the rollback released it.
	if _, err := conn2.Exec(ctx, "INSERT INTO t VALUES (7001, 0, 1.0, 'alive')"); err != nil {
		t.Fatal(err)
	}
	if got := connCount(t, conn2, "SELECT count(*) FROM t WHERE id = 7000"); got != 0 {
		t.Fatalf("orphaned insert survived disconnect: %d", got)
	}
	if got := connCount(t, conn2, "SELECT count(*) FROM t WHERE id = 7001"); got != 1 {
		t.Fatalf("post-disconnect insert missing: %d", got)
	}
}
