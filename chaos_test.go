package qpipe

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/tuple"
)

// TestChaosConcurrentWorkload is the engine's liveness and consistency
// stress test: many goroutines fire random reads (scans, sorts, joins,
// aggregates — overlapping signatures so OSP fires constantly) mixed with
// writers inserting through the update µEngine. Invariants:
//
//   - no query hangs (global deadline),
//   - no query fails,
//   - counts are monotonically consistent with the inserts (a count is
//     never below the initial size nor above initial+inserted-so-far),
//   - the engine's own bookkeeping (shares, queries) stays coherent,
//   - cancelling one consumer of an in-flight partitioned scan group (the
//     cancel workers below fire constantly into the shared circular scans)
//     never stalls the group's other consumers.
func TestChaosConcurrentWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const initial = 4000
	mgr := newTestDB(t, initial)
	mgr.Disk.SetLatency(5*time.Microsecond, 8*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	schema := tableSchema(mgr)

	var inserted atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	deadline := time.After(60 * time.Second)
	done := make(chan struct{})

	readWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 30; iter++ {
			insBefore := inserted.Load()
			var p plan.Node
			switch rng.Intn(5) {
			case 0: // count scan (shared circularly across workers)
				p = plan.NewAggregate(
					plan.NewTableScan("t", schema, nil, nil, false),
					[]expr.AggSpec{{Kind: expr.AggCount}})
			case 1: // filtered scan
				p = plan.NewAggregate(
					plan.NewTableScan("t", schema,
						expr.GE(expr.Col(0), expr.CInt(int64(rng.Intn(initial)))), nil, false),
					[]expr.AggSpec{{Kind: expr.AggCount}})
			case 2: // sort (identical across workers -> sort sharing)
				p = plan.NewSort(
					plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(500)), []int{0}, false),
					[]int{0}, false)
			case 3: // group-by
				p = plan.NewGroupBy(
					plan.NewTableScan("t", schema, nil, nil, false),
					[]int{1}, []expr.AggSpec{{Kind: expr.AggCount}})
			default: // self hash join on grp
				l := plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(200)), []int{1}, false)
				r := plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(300)), []int{1}, false)
				p = plan.NewAggregate(plan.NewHashJoin(l, r, 0, 0),
					[]expr.AggSpec{{Kind: expr.AggCount}})
			}
			res, err := eng.Query(context.Background(), p)
			if err != nil {
				errs <- err
				return
			}
			rows, err := res.All()
			if err != nil {
				errs <- fmt.Errorf("reader %d iter %d: %w", seed, iter, err)
				return
			}
			// Consistency check for the plain count query.
			if ag, ok := p.(*plan.Aggregate); ok {
				if ts, ok2 := ag.Child.(*plan.TableScan); ok2 && ts.Filter == nil {
					n := rows[0][0].I
					insAfter := inserted.Load()
					if n < initial+insBefore-insBefore || n < initial || n > initial+insAfter {
						errs <- fmt.Errorf("count %d outside [%d, %d]", n, initial, initial+insAfter)
						return
					}
				}
			}
		}
	}

	// cancelWorker fires count scans that share the partitioned circular
	// scan group with the read workers' queries, then cancels them mid
	// flight. The group must drop the cancelled consumer from every
	// partition without stalling the survivors (the final exact-count check
	// below would hang or miscount otherwise).
	cancelWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 20; iter++ {
			ctx, cancel := context.WithCancel(context.Background())
			p := plan.NewAggregate(
				plan.NewTableScan("t", schema, nil, nil, false),
				[]expr.AggSpec{{Kind: expr.AggCount}})
			res, err := eng.Query(ctx, p)
			if err != nil {
				cancel()
				errs <- err
				return
			}
			delay := time.Duration(rng.Intn(800)) * time.Microsecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			// Either outcome is legal — completed before the cancel landed,
			// or aborted with the context error — but it must not hang.
			_, _ = res.All()
		}
	}

	writeWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 10; iter++ {
			n := 1 + rng.Intn(5)
			rows := make([]tuple.Tuple, n)
			for i := range rows {
				id := int64(1_000_000) + seed*10_000 + int64(iter*10+i)
				rows[i] = tuple.Tuple{tuple.I64(id), tuple.I64(0), tuple.F64(0), tuple.Str("chaos")}
			}
			res, err := eng.Query(context.Background(), plan.NewUpdate("t", rows))
			if err != nil {
				errs <- err
				return
			}
			if _, err := res.All(); err != nil {
				errs <- fmt.Errorf("writer %d iter %d: %w", seed, iter, err)
				return
			}
			inserted.Add(int64(n))
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go readWorker(int64(i))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go writeWorker(int64(100 + i))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go cancelWorker(int64(200 + i))
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errs:
		t.Fatal(err)
	case <-deadline:
		t.Fatalf("chaos workload hung; runtime state:\n%s", eng.Runtime().DumpState())
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Final consistency: exact count (time-bounded so a stuck pipeline
	// yields a state dump instead of a test-harness timeout).
	res, _ := eng.Query(context.Background(), plan.NewAggregate(
		plan.NewTableScan("t", schema, nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	type countResult struct {
		rows []tuple.Tuple
		err  error
	}
	final := make(chan countResult, 1)
	go func() {
		rows, err := res.All()
		final <- countResult{rows, err}
	}()
	var rows []tuple.Tuple
	var err error
	select {
	case r := <-final:
		rows, err = r.rows, r.err
	case <-time.After(30 * time.Second):
		t.Fatalf("final count hung; runtime state:\n%s", eng.Runtime().DumpState())
	}
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rows[0][0].I, int64(initial)+inserted.Load(); got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
	st := eng.Stats()
	t.Logf("chaos: %d queries, shares=%v, deadlocks=%d materialized=%d",
		st.Queries, st.SharesByOp, st.DeadlocksSeen, st.Materialized)
}
