package qpipe

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qpipe/internal/core"
	"qpipe/internal/expr"
	"qpipe/internal/plan"
	"qpipe/internal/storage/disk"
	"qpipe/internal/tuple"
)

// TestChaosConcurrentWorkload is the engine's liveness and consistency
// stress test: many goroutines fire random reads (scans, sorts, joins,
// aggregates — overlapping signatures so OSP fires constantly) mixed with
// writers inserting through the update µEngine. Invariants:
//
//   - no query hangs (global deadline),
//   - no query fails,
//   - counts are monotonically consistent with the inserts (a count is
//     never below the initial size nor above initial+inserted-so-far),
//   - the engine's own bookkeeping (shares, queries) stays coherent,
//   - cancelling one consumer of an in-flight partitioned scan group (the
//     cancel workers below fire constantly into the shared circular scans)
//     never stalls the group's other consumers.
func TestChaosConcurrentWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const initial = 4000
	mgr := newTestDB(t, initial)
	mgr.Disk.SetLatency(5*time.Microsecond, 8*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)
	eng := New(mgr, DefaultConfig())
	defer eng.Close()
	schema := tableSchema(mgr)

	var inserted atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	deadline := time.After(60 * time.Second)
	done := make(chan struct{})

	readWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 30; iter++ {
			insBefore := inserted.Load()
			var p plan.Node
			switch rng.Intn(5) {
			case 0: // count scan (shared circularly across workers)
				p = plan.NewAggregate(
					plan.NewTableScan("t", schema, nil, nil, false),
					[]expr.AggSpec{{Kind: expr.AggCount}})
			case 1: // filtered scan
				p = plan.NewAggregate(
					plan.NewTableScan("t", schema,
						expr.GE(expr.Col(0), expr.CInt(int64(rng.Intn(initial)))), nil, false),
					[]expr.AggSpec{{Kind: expr.AggCount}})
			case 2: // sort (identical across workers -> sort sharing)
				p = plan.NewSort(
					plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(500)), []int{0}, false),
					[]int{0}, false)
			case 3: // group-by
				p = plan.NewGroupBy(
					plan.NewTableScan("t", schema, nil, nil, false),
					[]int{1}, []expr.AggSpec{{Kind: expr.AggCount}})
			default: // self hash join on grp
				l := plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(200)), []int{1}, false)
				r := plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(300)), []int{1}, false)
				p = plan.NewAggregate(plan.NewHashJoin(l, r, 0, 0),
					[]expr.AggSpec{{Kind: expr.AggCount}})
			}
			res, err := eng.Query(context.Background(), p)
			if err != nil {
				errs <- err
				return
			}
			rows, err := res.All()
			if err != nil {
				errs <- fmt.Errorf("reader %d iter %d: %w", seed, iter, err)
				return
			}
			// Consistency check for the plain count query.
			if ag, ok := p.(*plan.Aggregate); ok {
				if ts, ok2 := ag.Child.(*plan.TableScan); ok2 && ts.Filter == nil {
					n := rows[0][0].I
					insAfter := inserted.Load()
					if n < initial+insBefore-insBefore || n < initial || n > initial+insAfter {
						errs <- fmt.Errorf("count %d outside [%d, %d]", n, initial, initial+insAfter)
						return
					}
				}
			}
		}
	}

	// cancelWorker fires count scans that share the partitioned circular
	// scan group with the read workers' queries, then cancels them mid
	// flight. The group must drop the cancelled consumer from every
	// partition without stalling the survivors (the final exact-count check
	// below would hang or miscount otherwise).
	cancelWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 20; iter++ {
			ctx, cancel := context.WithCancel(context.Background())
			p := plan.NewAggregate(
				plan.NewTableScan("t", schema, nil, nil, false),
				[]expr.AggSpec{{Kind: expr.AggCount}})
			res, err := eng.Query(ctx, p)
			if err != nil {
				cancel()
				errs <- err
				return
			}
			delay := time.Duration(rng.Intn(800)) * time.Microsecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			// Either outcome is legal — completed before the cancel landed,
			// or aborted with the context error — but it must not hang.
			_, _ = res.All()
		}
	}

	writeWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 10; iter++ {
			n := 1 + rng.Intn(5)
			rows := make([]tuple.Tuple, n)
			for i := range rows {
				id := int64(1_000_000) + seed*10_000 + int64(iter*10+i)
				rows[i] = tuple.Tuple{tuple.I64(id), tuple.I64(0), tuple.F64(0), tuple.Str("chaos")}
			}
			res, err := eng.Query(context.Background(), plan.NewUpdate("t", rows))
			if err != nil {
				errs <- err
				return
			}
			if _, err := res.All(); err != nil {
				errs <- fmt.Errorf("writer %d iter %d: %w", seed, iter, err)
				return
			}
			inserted.Add(int64(n))
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go readWorker(int64(i))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go writeWorker(int64(100 + i))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go cancelWorker(int64(200 + i))
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errs:
		t.Fatal(err)
	case <-deadline:
		t.Fatalf("chaos workload hung; runtime state:\n%s", eng.Runtime().DumpState())
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Final consistency: exact count (time-bounded so a stuck pipeline
	// yields a state dump instead of a test-harness timeout).
	res, _ := eng.Query(context.Background(), plan.NewAggregate(
		plan.NewTableScan("t", schema, nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	type countResult struct {
		rows []tuple.Tuple
		err  error
	}
	final := make(chan countResult, 1)
	go func() {
		rows, err := res.All()
		final <- countResult{rows, err}
	}()
	var rows []tuple.Tuple
	var err error
	select {
	case r := <-final:
		rows, err = r.rows, r.err
	case <-time.After(30 * time.Second):
		t.Fatalf("final count hung; runtime state:\n%s", eng.Runtime().DumpState())
	}
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rows[0][0].I, int64(initial)+inserted.Load(); got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
	st := eng.Stats()
	t.Logf("chaos: %d queries, shares=%v, deadlocks=%d materialized=%d",
		st.Queries, st.SharesByOp, st.DeadlocksSeen, st.Materialized)
}

// TestChaosGovernanceStorm turns the storm adversarial: admission control
// capped below the offered load, random per-query statement timeouts, a
// seeded fault schedule hitting temp-file writes, and disk latency jitter —
// all at once. Queries may fail ONLY with governed, typed errors (overload
// shedding, deadline expiry, the injected fault, cancellation); any other
// failure or any hang is a bug. After the storm drains, the engine's
// bookkeeping must converge to zero: no in-flight queries, an empty
// admission queue, zero temp files, and an exact final count.
func TestChaosGovernanceStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const initial = 4000
	mgr := newTestDB(t, initial)
	mgr.Disk.SetLatency(5*time.Microsecond, 8*time.Microsecond, 0)
	defer mgr.Disk.SetLatency(0, 0, 0)
	mgr.Disk.SetLatencyJitter(0.4, 99)
	defer mgr.Disk.SetLatencyJitter(0, 0)
	// Seeded write faults scoped to spill files: sorts and joins trip over
	// them, heap appends (and therefore the exact-count invariant) do not.
	mgr.Disk.InjectFaultSchedule(&disk.FaultSchedule{
		Seed: 42, WriteProb: 0.05, WriteFile: "tmp:", Err: errInjected,
	})
	defer mgr.Disk.ClearFaults()

	cfg := DefaultConfig()
	cfg.MaxConcurrentQueries = 4
	cfg.AdmissionQueue = 6
	eng := New(mgr, cfg)
	defer eng.Close()
	schema := tableSchema(mgr)

	// tolerated reports whether an error is one the governance layer is
	// allowed to hand out under this storm.
	tolerated := func(err error) bool {
		if err == nil {
			return true
		}
		var oe *OverloadedError
		var de *DeadlineError
		return errors.As(err, &oe) || errors.As(err, &de) ||
			errors.Is(err, errInjected) || strings.Contains(err.Error(), "injected") ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	}

	var inserted atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	deadline := time.After(90 * time.Second)
	done := make(chan struct{})

	mkRead := func(rng *rand.Rand) plan.Node {
		switch rng.Intn(4) {
		case 0: // count scan
			return plan.NewAggregate(
				plan.NewTableScan("t", schema, nil, nil, false),
				[]expr.AggSpec{{Kind: expr.AggCount}})
		case 1: // sort — always writes tmp:sorted:, so faults fire here
			return plan.NewSort(
				plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(500)), []int{0}, false),
				[]int{0}, false)
		case 2: // group-by
			return plan.NewGroupBy(
				plan.NewTableScan("t", schema, nil, nil, false),
				[]int{1}, []expr.AggSpec{{Kind: expr.AggCount}})
		default: // self hash join
			l := plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(200)), []int{1}, false)
			r := plan.NewTableScan("t", schema, expr.LT(expr.Col(0), expr.CInt(300)), []int{1}, false)
			return plan.NewAggregate(plan.NewHashJoin(l, r, 0, 0),
				[]expr.AggSpec{{Kind: expr.AggCount}})
		}
	}

	// readWorker: plain reads; overload shedding and injected faults are
	// legal outcomes, anything else is not.
	readWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 25; iter++ {
			res, err := eng.Query(context.Background(), mkRead(rng))
			if err != nil {
				if !tolerated(err) {
					errs <- fmt.Errorf("reader %d iter %d submit: %w", seed, iter, err)
					return
				}
				continue
			}
			if _, err := res.All(); !tolerated(err) {
				errs <- fmt.Errorf("reader %d iter %d: %w", seed, iter, err)
				return
			}
		}
	}

	// timeoutWorker: the same reads armed with random tight statement
	// timeouts — some expire in the admission queue, some mid-execution,
	// some not at all.
	timeoutWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 25; iter++ {
			d := time.Duration(1+rng.Intn(20)) * time.Millisecond
			q, err := eng.Runtime().SubmitOpts(context.Background(), mkRead(rng),
				core.QueryOptions{Timeout: d})
			if err != nil {
				if !tolerated(err) {
					errs <- fmt.Errorf("timeout worker %d iter %d submit: %w", seed, iter, err)
					return
				}
				continue
			}
			// A killed query tears its buffers down under the reader, so the
			// drain may surface teardown shrapnel; the query's terminal error
			// (Wait) is the authoritative, typed one.
			_, derr := q.Result.Drain()
			werr := q.Wait()
			if !tolerated(werr) {
				errs <- fmt.Errorf("timeout worker %d iter %d wait: %w", seed, iter, werr)
				return
			}
			if derr != nil && werr == nil && !tolerated(derr) {
				// The deadline can land between the query's completion and the
				// drain's last Get: Wait is clean, the drain sees teardown
				// shrapnel. CancelErr exposes the governed cause.
				if cerr := q.CancelErr(); cerr == nil || !tolerated(cerr) {
					errs <- fmt.Errorf("timeout worker %d iter %d drain: %w", seed, iter, derr)
					return
				}
			}
		}
	}

	// cancelWorker: client-side cancellation racing admission and execution.
	cancelWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 15; iter++ {
			ctx, cancel := context.WithCancel(context.Background())
			res, err := eng.Query(ctx, mkRead(rng))
			if err != nil {
				cancel()
				if !tolerated(err) {
					errs <- fmt.Errorf("cancel worker %d iter %d submit: %w", seed, iter, err)
					return
				}
				continue
			}
			delay := time.Duration(rng.Intn(1500)) * time.Microsecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			if _, err := res.All(); !tolerated(err) {
				errs <- fmt.Errorf("cancel worker %d iter %d: %w", seed, iter, err)
				return
			}
		}
	}

	// writeWorker: inserts count toward the final total only when they fully
	// succeed. Writers carry no timeout and heap appends are outside the
	// fault schedule's write scope, so a writer admitted past the queue must
	// not fail at all — partial application would corrupt the invariant.
	writeWorker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 10; iter++ {
			n := 1 + rng.Intn(5)
			rows := make([]tuple.Tuple, n)
			for i := range rows {
				id := int64(2_000_000) + seed*10_000 + int64(iter*10+i)
				rows[i] = tuple.Tuple{tuple.I64(id), tuple.I64(0), tuple.F64(0), tuple.Str("storm")}
			}
			res, err := eng.Query(context.Background(), plan.NewUpdate("t", rows))
			if err != nil {
				var oe *OverloadedError
				if !errors.As(err, &oe) {
					errs <- fmt.Errorf("writer %d iter %d submit: %w", seed, iter, err)
					return
				}
				continue // shed before anything ran: nothing applied
			}
			if _, err := res.All(); err != nil {
				errs <- fmt.Errorf("writer %d iter %d: %w", seed, iter, err)
				return
			}
			inserted.Add(int64(n))
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}

	for i := 0; i < 6; i++ {
		wg.Add(1)
		go readWorker(int64(i))
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go timeoutWorker(int64(300 + i))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go cancelWorker(int64(400 + i))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go writeWorker(int64(500 + i))
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errs:
		t.Fatal(err)
	case <-deadline:
		t.Fatalf("governance storm hung; runtime state:\n%s", eng.Runtime().DumpState())
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Calm the disk and verify the bookkeeping converged.
	mgr.Disk.ClearFaults()
	mgr.Disk.SetLatencyJitter(0, 0)
	mgr.Disk.SetLatency(0, 0, 0)

	stDeadline := time.Now().Add(10 * time.Second)
	for {
		st := eng.Stats()
		if st.InFlight == 0 && st.AdmissionQueued == 0 {
			break
		}
		if time.Now().After(stDeadline) {
			t.Fatalf("governance gauges did not converge: in-flight=%d queued=%d\n%s",
				st.InFlight, st.AdmissionQueued, eng.Runtime().DumpState())
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitNoTempFiles(t, func() []string { return mgr.Disk.FilesWithPrefix("tmp:") }, "spill")

	// Exact final count: every successful insert is present, no torn writes.
	res, err := eng.Query(context.Background(), plan.NewAggregate(
		plan.NewTableScan("t", schema, nil, nil, false),
		[]expr.AggSpec{{Kind: expr.AggCount}}))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rows[0][0].I, int64(initial)+inserted.Load(); got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
	st := eng.Stats()
	if st.Shed == 0 && st.DeadlineTimeouts == 0 {
		t.Fatal("storm never exercised the governance layer (no sheds, no timeouts)")
	}
	t.Logf("governance storm: %d queries, shed=%d timeouts=%d faults=%d shares=%v",
		st.Queries, st.Shed, st.DeadlineTimeouts, mgr.Disk.Stats().FaultsInjected, st.SharesByOp)
}
