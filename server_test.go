// Lifecycle tests for the network front end, exercising the real stack —
// TCP loopback, wire framing, the per-connection session — from the
// client's side of the socket. External test package: these tests import
// qpipe/client, which imports qpipe back, so they cannot live in package
// qpipe itself.
package qpipe_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qpipe"
	"qpipe/client"
	"qpipe/sql"
	"qpipe/wire"
)

// startServer opens a DB, loads n rows into table t, and serves it on a
// loopback listener. Cleanup shuts the server (and DB) down.
func startServer(t testing.TB, n int, dbOpts qpipe.Options, srvOpts qpipe.ServerOptions) (*qpipe.Server, *qpipe.DB, string) {
	t.Helper()
	db, err := qpipe.Open(dbOpts)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		schema := qpipe.NewSchema(
			qpipe.ColDef("id", qpipe.KindInt),
			qpipe.ColDef("grp", qpipe.KindInt),
			qpipe.ColDef("amount", qpipe.KindFloat),
			qpipe.ColDef("note", qpipe.KindString),
		)
		if err := db.CreateTable("t", schema); err != nil {
			t.Fatal(err)
		}
		rows := make([]qpipe.Row, n)
		for i := range rows {
			rows[i] = qpipe.R(i, i%10, float64(i)*1.5, fmt.Sprintf("row-%d", i))
		}
		if err := db.Load("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	srv := qpipe.NewServer(db, srvOpts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v after Shutdown, want nil", err)
		}
	})
	return srv, db, ln.Addr().String()
}

func TestServerQueryRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, 1000, qpipe.Options{}, qpipe.ServerOptions{})
	ctx := context.Background()
	conn, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rows, err := conn.Query(ctx, "SELECT id, note FROM t WHERE id < 5")
	if err != nil {
		t.Fatal(err)
	}
	if s := rows.Schema(); s.Len() != 2 || s.Cols[0].Name != "id" || s.Cols[1].Name != "note" {
		t.Fatalf("schema = %v", rows.Schema())
	}
	all, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("got %d rows, want 5", len(all))
	}
	if all[0][0].I != 0 || all[0][1].S != "row-0" {
		t.Fatalf("first row = %v", all[0])
	}

	// DDL + INSERT through Exec, then read it back.
	if _, err := conn.Exec(ctx, "CREATE TABLE u (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	n, err := conn.Exec(ctx, "INSERT INTO u VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("INSERT affected %d, want 2", n)
	}
	got, err := conn.Query(ctx, "SELECT count(*) AS n FROM u")
	if err != nil {
		t.Fatal(err)
	}
	all, err = got.All()
	if err != nil || len(all) != 1 || all[0][0].I != 2 {
		t.Fatalf("count = %v, %v", all, err)
	}

	// SET is absorbed by the server-side session.
	setRows, err := conn.Query(ctx, "SET batch_size = 32")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setRows.Discard(); err != nil {
		t.Fatal(err)
	}

	// Prepared statement, executed twice.
	stmt, err := conn.Prepare(ctx, "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, err := stmt.Query(ctx)
		if err != nil {
			t.Fatal(err)
		}
		all, err := r.All()
		if err != nil || len(all) != 1 || all[0][0].I != 1000 {
			t.Fatalf("exec %d: %v, %v", i, all, err)
		}
	}
	if err := stmt.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Server counters over the wire.
	stats, err := conn.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["queries_served"] < 4 {
		t.Fatalf("queries_served = %d, want >= 4", stats["queries_served"])
	}
	if stats["rows_sent"] < 7 {
		t.Fatalf("rows_sent = %d, want >= 7", stats["rows_sent"])
	}
	if stats["active_conns"] != 1 {
		t.Fatalf("active_conns = %d, want 1", stats["active_conns"])
	}
}

// TestServerTypedErrors: the error family crosses the wire as concrete
// types a client matches with errors.As/Is.
func TestServerTypedErrors(t *testing.T) {
	_, db, addr := startServer(t, 100, qpipe.Options{}, qpipe.ServerOptions{})
	ctx := context.Background()
	conn, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Unknown table.
	_, err = conn.Query(ctx, "SELECT a FROM missing")
	var ut *qpipe.UnknownTableError
	if !errors.As(err, &ut) || ut.Table != "missing" {
		t.Fatalf("unknown table: got %[1]T %[1]v", err)
	}
	// Parse error, with its position.
	_, err = conn.Query(ctx, "SELEC a FROM t")
	var pe *sql.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("parse: got %[1]T %[1]v", err)
	}
	// Unknown column.
	_, err = conn.Query(ctx, "SELECT nope FROM t")
	var uc *qpipe.UnknownColumnError
	if !errors.As(err, &uc) || uc.Column != "nope" {
		t.Fatalf("unknown column: got %[1]T %[1]v", err)
	}
	// Statement misrouting (SELECT through Exec).
	_, err = conn.Exec(ctx, "SELECT id FROM t")
	var se *qpipe.StatementError
	if !errors.As(err, &se) {
		t.Fatalf("misroute: got %[1]T %[1]v", err)
	}
	// Bad SET value.
	_, err = conn.Query(ctx, "SET parallelism = 0")
	var oe *qpipe.OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("bad SET: got %[1]T %[1]v", err)
	}
	// Statement timeout → typed DeadlineError that unwraps to
	// context.DeadlineExceeded, exactly like the embedded API. Slow the
	// disk so the 1ms budget reliably expires mid-query.
	db.SetDiskLatency(300*time.Microsecond, 500*time.Microsecond, 0)
	rows, err := conn.Query(ctx, "SELECT id FROM t ORDER BY amount",
		client.WithTimeout(time.Millisecond))
	if err == nil {
		_, err = rows.Discard()
	}
	db.SetDiskLatency(0, 0, 0)
	var de *qpipe.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("timeout: got %[1]T %[1]v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error lost its unwrap: %v", err)
	}
	// The connection survived every one of those failures.
	r, err := conn.Query(ctx, "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if all, err := r.All(); err != nil || all[0][0].I != 100 {
		t.Fatalf("connection unusable after errors: %v, %v", all, err)
	}
}

// TestServerConnLimit: connections over MaxConns are refused with a typed
// *OverloadedError at handshake.
func TestServerConnLimit(t *testing.T) {
	_, _, addr := startServer(t, 10, qpipe.Options{}, qpipe.ServerOptions{MaxConns: 1})
	ctx := context.Background()
	c1, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	var refused *qpipe.OverloadedError
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = client.Connect(ctx, addr)
		if errors.As(err, &refused) {
			break
		}
		// The first handler may not have registered active yet; retry
		// briefly rather than flake.
		if time.Now().After(deadline) {
			t.Fatalf("second connection: got %[1]T %[1]v, want *OverloadedError", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if refused.MaxConcurrent != 1 {
		t.Fatalf("refusal carries MaxConcurrent=%d, want 1", refused.MaxConcurrent)
	}
	// Closing the first connection frees the slot.
	c1.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		c3, err := client.Connect(ctx, addr)
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerClientDisconnectMidStream: a client vanishing mid-stream must
// cancel the query server-side and release every lease — the in-flight
// gauge returns to zero and no temp files remain.
func TestServerClientDisconnectMidStream(t *testing.T) {
	srv, db, addr := startServer(t, 20_000, qpipe.Options{}, qpipe.ServerOptions{})
	// Slow the disk so the stream is still in flight when we sever it.
	db.SetDiskLatency(30*time.Microsecond, 50*time.Microsecond, 0)
	defer db.SetDiskLatency(0, 0, 0)

	ctx := context.Background()
	conn, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	// A big sort keeps temp files and leases in play mid-stream.
	rows, err := conn.Query(ctx, "SELECT id, note FROM t ORDER BY amount DESC", client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	// Hard close: no Cancel frame, no Quit — the socket just dies.
	conn.Close()

	// The server must notice, cancel the query, release leases and locks,
	// and clean up its temp files.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := db.Stats()
		tmp := qpipe.DiskOf(db).FilesWithPrefix("tmp:")
		if st.InFlight == 0 && st.AdmissionQueued == 0 && len(tmp) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect did not clean up: in-flight=%d queued=%d tmp=%v",
				st.InFlight, st.AdmissionQueued, tmp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the server keeps serving new connections.
	conn2, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	r, err := conn2.Query(ctx, "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if all, err := r.All(); err != nil || all[0][0].I != 20_000 {
		t.Fatalf("post-disconnect query: %v, %v", all, err)
	}
	if srv.Stats().ActiveConns != 1 {
		t.Fatalf("active conns = %d, want 1", srv.Stats().ActiveConns)
	}
}

// TestServerCancelMidStream: the protocol-level cancel (Rows.Close) aborts
// the query and leaves the connection reusable.
func TestServerCancelMidStream(t *testing.T) {
	_, db, addr := startServer(t, 20_000, qpipe.Options{}, qpipe.ServerOptions{})
	db.SetDiskLatency(20*time.Microsecond, 30*time.Microsecond, 0)
	defer db.SetDiskLatency(0, 0, 0)

	ctx := context.Background()
	conn, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rows, err := conn.Query(ctx, "SELECT id FROM t ORDER BY amount", client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// Same connection, next query: works.
	r, err := conn.Query(ctx, "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if all, err := r.All(); err != nil || all[0][0].I != 20_000 {
		t.Fatalf("post-cancel query: %v, %v", all, err)
	}
	// Leases drained server-side.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := db.Stats()
		if st.InFlight == 0 && len(qpipe.DiskOf(db).FilesWithPrefix("tmp:")) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel did not clean up: in-flight=%d", st.InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerDrainWithInFlightStream: Shutdown while a stream is in flight
// must not hang; the client sees either a clean completion or a typed
// error, and Serve returns nil.
func TestServerDrainWithInFlightStream(t *testing.T) {
	srv, db, addr := startServer(t, 20_000, qpipe.Options{DrainTimeout: 500 * time.Millisecond},
		qpipe.ServerOptions{ShutdownGrace: 5 * time.Second})
	db.SetDiskLatency(20*time.Microsecond, 30*time.Microsecond, 0)
	defer db.SetDiskLatency(0, 0, 0)

	ctx := context.Background()
	conn, err := client.Connect(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rows, err := conn.Query(ctx, "SELECT id FROM t ORDER BY amount", client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown() // idempotent with the cleanup's call
		close(shutdownDone)
	}()

	// Keep consuming: the stream either completes (drain let it finish) or
	// fails with the engine's cancellation/closed error — never hangs, never
	// panics.
	_, derr := rows.Discard()
	if derr != nil {
		ok := errors.Is(derr, context.Canceled) || errors.Is(derr, qpipe.ErrClosed) ||
			errors.Is(derr, io.EOF) || errors.Is(derr, io.ErrUnexpectedEOF) ||
			strings.Contains(derr.Error(), "cancel")
		var de *qpipe.DeadlineError
		var ne net.Error
		ok = ok || errors.As(derr, &de) || errors.As(derr, &ne)
		if !ok {
			t.Fatalf("drain surfaced an ungoverned error: %[1]T %[1]v", derr)
		}
	}
	select {
	case <-shutdownDone:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown hung with an in-flight stream")
	}
	// New connections are refused once drained (accept loop closed).
	if _, err := client.Connect(ctx, addr); err == nil {
		t.Fatal("connect succeeded after Shutdown")
	}
}

// TestServerMalformedFrames: protocol violations get a typed error frame
// (where a response is still possible) and a closed connection — never a
// panic, never a hang.
func TestServerMalformedFrames(t *testing.T) {
	_, _, addr := startServer(t, 10, qpipe.Options{}, qpipe.ServerOptions{})

	dial := func() net.Conn {
		t.Helper()
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		nc.SetDeadline(time.Now().Add(10 * time.Second))
		return nc
	}
	handshake := func(nc net.Conn) {
		t.Helper()
		hello := wire.Hello{Version: wire.ProtocolVersion, Client: "raw"}
		if err := wire.WriteFrame(nc, wire.MsgHello, hello.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		mt, _, _, err := wire.ReadFrame(nc, nil)
		if err != nil || mt != wire.MsgWelcome {
			t.Fatalf("handshake: %v %v", mt, err)
		}
	}
	expectProtocolError := func(nc net.Conn) {
		t.Helper()
		// The server sends a CodeProtocol error frame (best effort) and
		// closes. Reading to EOF must yield at most that one frame.
		for {
			mt, payload, _, err := wire.ReadFrame(nc, nil)
			if err != nil {
				return // closed — fine
			}
			if mt != wire.MsgError {
				continue // residual frames of an earlier response
			}
			we, err := wire.DecodeError(payload)
			if err != nil {
				t.Fatalf("undecodable error frame: %v", err)
			}
			if we.Code != wire.CodeProtocol {
				t.Fatalf("error code = %d, want CodeProtocol", we.Code)
			}
			return
		}
	}

	t.Run("garbage-hello", func(t *testing.T) {
		nc := dial()
		defer nc.Close()
		nc.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
		// Either a protocol-error frame or a straight close; never a hang.
		expectProtocolError(nc)
	})
	t.Run("zero-length-frame", func(t *testing.T) {
		nc := dial()
		defer nc.Close()
		handshake(nc)
		nc.Write([]byte{0, 0, 0, 0})
		expectProtocolError(nc)
	})
	t.Run("oversized-frame", func(t *testing.T) {
		nc := dial()
		defer nc.Close()
		handshake(nc)
		nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
		expectProtocolError(nc)
	})
	t.Run("truncated-frame", func(t *testing.T) {
		nc := dial()
		defer nc.Close()
		handshake(nc)
		// Claims 100 bytes, delivers 3, then dies.
		nc.Write([]byte{0, 0, 0, 100, byte(wire.MsgQuery), 'S', 'E'})
		nc.Close()
	})
	t.Run("unknown-type", func(t *testing.T) {
		nc := dial()
		defer nc.Close()
		handshake(nc)
		wire.WriteFrame(nc, wire.MsgType(0xEE), nil)
		expectProtocolError(nc)
	})
	t.Run("version-mismatch", func(t *testing.T) {
		nc := dial()
		defer nc.Close()
		hello := wire.Hello{Version: 999, Client: "future"}
		wire.WriteFrame(nc, wire.MsgHello, hello.Encode(nil))
		expectProtocolError(nc)
	})
	t.Run("truncated-payload", func(t *testing.T) {
		nc := dial()
		defer nc.Close()
		handshake(nc)
		// A Query frame whose payload is valid framing but garbage content.
		wire.WriteFrame(nc, wire.MsgQuery, []byte{0xFF, 0xFF})
		expectProtocolError(nc)
	})
}

// TestServerConcurrentConns: many connections at once, each its own
// session; results do not interleave across sockets.
func TestServerConcurrentConns(t *testing.T) {
	_, _, addr := startServer(t, 2000, qpipe.Options{}, qpipe.ServerOptions{})
	ctx := context.Background()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := client.Connect(ctx, addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < 5; i++ {
				r, err := conn.Query(ctx, fmt.Sprintf("SELECT count(*) AS n FROM t WHERE grp = %d", w%10))
				if err != nil {
					errs <- err
					return
				}
				all, err := r.All()
				if err != nil {
					errs <- err
					return
				}
				if len(all) != 1 || all[0][0].I != 200 {
					errs <- fmt.Errorf("worker %d: got %v, want 200", w, all)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
