// The network storm: the chaos suite's adversarial conditions (random
// disconnects, statement timeouts, seeded disk faults) driven through real
// loopback TCP connections instead of in-process calls. External test
// package — it rides the client package, which imports qpipe back.
//
// Invariants, run under -race in CI:
//   - queries fail ONLY with governed, typed errors or connection-level
//     errors the storm itself caused,
//   - the server never panics and never wedges,
//   - after the storm and drain, the engine's gauges converge to zero and
//     no temp files remain,
//   - a fresh connection still gets correct results afterwards.
package qpipe_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qpipe"
	"qpipe/client"
	"qpipe/internal/storage/disk"
	"qpipe/wire"
)

func TestChaosNetworkStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	srv, db, addr := startServer(t, 8000, qpipe.Options{
		MaxConcurrentQueries: 6,
		AdmissionQueue:       8,
		DrainTimeout:         2 * time.Second,
	}, qpipe.ServerOptions{ShutdownGrace: 10 * time.Second})

	d := qpipe.DiskOf(db)
	d.SetLatency(5*time.Microsecond, 8*time.Microsecond, 0)
	defer d.SetLatency(0, 0, 0)
	d.SetLatencyJitter(0.4, 99)
	defer d.SetLatencyJitter(0, 0)
	// Seeded faults on spill writes: sorts trip over them, heap scans do not.
	injected := errors.New("injected disk fault")
	d.InjectFaultSchedule(&disk.FaultSchedule{
		Seed: 42, WriteProb: 0.05, WriteFile: "tmp:", Err: injected,
	})
	defer d.ClearFaults()

	// tolerated: governed typed errors, the injected fault, and the
	// connection-level shrapnel the storm's own disconnects cause.
	tolerated := func(err error) bool {
		if err == nil {
			return true
		}
		var oe *qpipe.OverloadedError
		var de *qpipe.DeadlineError
		var ne net.Error
		var pe *wire.ProtocolError
		return errors.As(err, &oe) || errors.As(err, &de) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
			errors.As(err, &ne) || errors.As(err, &pe) ||
			strings.Contains(err.Error(), "injected") ||
			strings.Contains(err.Error(), "cancel") ||
			strings.Contains(err.Error(), "closed")
	}

	queries := []string{
		"SELECT count(*) AS n FROM t",
		"SELECT grp, count(*) AS n FROM t GROUP BY grp",
		"SELECT id, amount FROM t ORDER BY amount DESC", // spills: faults fire here
		"SELECT id FROM t WHERE id < 2000",
		"SELECT count(*) AS n FROM t WHERE grp = 3",
	}

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	deadline := time.After(120 * time.Second)
	done := make(chan struct{})

	// Each worker runs its own connections through random fates: clean
	// completion, protocol cancel, tight statement timeouts, or a hard
	// socket close mid-stream.
	worker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		ctx := context.Background()
		for iter := 0; iter < 12; iter++ {
			conn, err := client.Connect(ctx, addr)
			if err != nil {
				if tolerated(err) {
					continue
				}
				errs <- fmt.Errorf("worker %d iter %d connect: %w", seed, iter, err)
				return
			}
			// A few requests per connection, each with a random fate.
			nreq := 1 + rng.Intn(3)
			hardClosed := false
			for r := 0; r < nreq && !hardClosed; r++ {
				q := queries[rng.Intn(len(queries))]
				var opts []client.Option
				if rng.Intn(3) == 0 {
					opts = append(opts, client.WithTimeout(time.Duration(1+rng.Intn(15))*time.Millisecond))
				}
				if rng.Intn(4) == 0 {
					opts = append(opts, client.WithBatchSize(8+rng.Intn(64)))
				}
				rows, err := conn.Query(ctx, q, opts...)
				if err != nil {
					if !tolerated(err) {
						errs <- fmt.Errorf("worker %d iter %d query: %w", seed, iter, err)
						conn.Close()
						return
					}
					break // connection may be poisoned; next iteration dials anew
				}
				switch rng.Intn(4) {
				case 0: // hard disconnect mid-stream
					rows.Next()
					conn.Close()
					hardClosed = true
				case 1: // protocol cancel, connection stays usable
					rows.Next()
					if err := rows.Close(); err != nil && !tolerated(err) {
						errs <- fmt.Errorf("worker %d iter %d cancel: %w", seed, iter, err)
						conn.Close()
						return
					}
				default: // drain fully
					if _, err := rows.Discard(); err != nil && !tolerated(err) {
						errs <- fmt.Errorf("worker %d iter %d drain: %w", seed, iter, err)
						conn.Close()
						return
					}
				}
			}
			if !hardClosed {
				conn.Close()
			}
		}
	}

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go worker(int64(1000 + i))
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errs:
		t.Fatal(err)
	case <-deadline:
		t.Fatal("network storm hung")
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Calm the disk; the gauges and temp files must converge to zero.
	d.ClearFaults()
	d.SetLatencyJitter(0, 0)
	d.SetLatency(0, 0, 0)
	convergeDeadline := time.Now().Add(20 * time.Second)
	for {
		st := db.Stats()
		tmp := d.FilesWithPrefix("tmp:")
		if st.InFlight == 0 && st.AdmissionQueued == 0 && len(tmp) == 0 {
			break
		}
		if time.Now().After(convergeDeadline) {
			t.Fatalf("storm did not converge: in-flight=%d queued=%d tmp=%v",
				st.InFlight, st.AdmissionQueued, tmp)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server is still fully serviceable.
	conn, err := client.Connect(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rows, err := conn.Query(context.Background(), "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	all, err := rows.All()
	if err != nil || len(all) != 1 || all[0][0].I != 8000 {
		t.Fatalf("post-storm count: %v, %v", all, err)
	}
	sstats := srv.Stats()
	t.Logf("network storm: %d conns, %d queries, %d rows sent, %d errors sent, %d protocol errors; engine shed=%d timeouts=%d faults=%d",
		sstats.ConnsAccepted, sstats.QueriesServed, sstats.RowsSent, sstats.ErrorsSent,
		sstats.ProtocolErrors, db.Stats().Shed, db.Stats().DeadlineTimeouts, d.Stats().FaultsInjected)
}
