// Result: the handle to a submitted query's output stream — batch-level
// access (Next), bulk access (All, Discard) and a Go-1.23 range-over-func
// iterator (Rows).
//
// Lease protocol at the API boundary: the ROWS handed out are immutable and
// remain valid forever (the engine shares rows by reference and never
// recycles them); the batch ARRAYS carrying them are leases. Next hands the
// array's lease to the caller; All, Discard and Rows manage the leases
// internally (recycling each array once its rows were yielded), so rows
// obtained from them may be retained freely while the arrays go back to the
// engine's pool.
package qpipe

import (
	"io"
	"iter"

	"qpipe/internal/core"
	"qpipe/internal/tuple"
)

// Result is a handle to a submitted query's output.
type Result struct {
	q      *core.Query
	schema *Schema // output schema (column names and kinds)

	// Materialized mode (result-cache hits and cached executions): rows are
	// served from memory, q is nil.
	mat     []Row
	matDone bool
	hit     bool

	// limit < 0 = unlimited. Tracked across Next calls; once delivered
	// rows reach the limit the query is cancelled and the result reports
	// clean EOF.
	limit     int64
	delivered int64
	limitHit  bool

	err     error
	errSeen bool
}

// newStreamResult wraps an admitted query.
func newStreamResult(q *core.Query, schema *Schema, limit int64) *Result {
	return &Result{q: q, schema: schema, limit: limit}
}

// newCachedResult wraps materialized rows (result-cache path).
func newCachedResult(rows []Row, schema *Schema, hit bool) *Result {
	return &Result{mat: rows, schema: schema, hit: hit, limit: -1}
}

// CacheHit reports whether the result was served from the result cache
// (always false for plain Run/Query executions).
func (r *Result) CacheHit() bool { return r.hit }

// Schema returns the result's output schema: the column names and kinds the
// rows follow, in order. Clients rendering results (the qpipe-shell REPL,
// report generators) use it for headers.
func (r *Result) Schema() *Schema { return r.schema }

// Next returns the next batch of result rows; io.EOF signals completion.
// The returned batch ARRAY is owned by the caller (the engine hands over
// its lease and never touches or recycles it), but the ROWS inside are
// read-only: under the engine's lease protocol they may be shared by
// reference with a port's replay window and with concurrent OSP satellite
// queries, so mutating a returned row corrupts other queries' results.
// Callers that need to modify a row must Clone it first.
func (r *Result) Next() ([]Row, error) {
	if r.q == nil { // materialized mode (result-cache paths)
		if r.matDone || len(r.mat) == 0 {
			return nil, io.EOF
		}
		b := r.mat
		r.mat, r.matDone = nil, true
		return b, nil
	}
	if r.limitHit {
		return nil, io.EOF
	}
	if r.limit == 0 {
		r.limitHit = true
		r.q.Cancel()
		return nil, io.EOF
	}
	b, err := r.q.Result.Get()
	if err != nil {
		if err != io.EOF {
			// A cancelled (or timed-out) query tears its buffers down under
			// the reader, so Get surfaces teardown shrapnel ("buffer
			// abandoned"). Normalize to the query's terminal cancellation
			// error — the typed *DeadlineError / context.Canceled the caller
			// can branch on.
			if cerr := r.q.CancelErr(); cerr != nil {
				err = cerr
			}
		}
		return nil, err
	}
	if r.limit > 0 && r.delivered+int64(len(b)) >= r.limit {
		b = b[:r.limit-r.delivered]
		r.delivered = r.limit
		r.limitHit = true
		// The limit is satisfied: stop the upstream work. The truncated
		// array's lease still belongs to the caller.
		r.q.Cancel()
		return b, nil
	}
	r.delivered += int64(len(b))
	return b, nil
}

// Recycle returns a batch array obtained from Next to the engine's pool
// (no-op in materialized mode). Rows copied or retained from the batch stay
// valid; only the carrier array is recycled. Callers driving Next directly —
// the qpipe-server row streamer encodes each batch onto the wire and hands
// the array straight back — should Recycle every batch exactly once;
// All/Discard/Rows do it internally.
func (r *Result) Recycle(b []Row) {
	if r.q != nil {
		r.q.Result.Recycle(b)
	}
}

// recycle is the internal spelling (All/Discard/Rows predate Recycle).
func (r *Result) recycle(b []Row) { r.Recycle(b) }

// finish resolves the result's terminal error after EOF: nil for
// materialized results and satisfied limits, the query's own terminal error
// otherwise.
func (r *Result) finish() error {
	if r.q == nil || r.limitHit {
		return nil
	}
	return r.q.Wait()
}

// setErr records the terminal error for Err (first one sticks).
func (r *Result) setErr(err error) error {
	if !r.errSeen {
		r.err, r.errSeen = err, true
	}
	return err
}

// Rows returns a single-use iterator over the result's rows, for use with
// range. Rows yielded may be retained freely but are READ-ONLY (see Next);
// the batch arrays that carried them are recycled under the hood after each
// batch's rows were yielded — the lease-safe hand-off. Breaking out of the
// range early cancels the remaining query work. Iteration errors are
// reported by Err after the loop:
//
//	for row := range res.Rows() {
//		...
//	}
//	if err := res.Err(); err != nil { ... }
func (r *Result) Rows() iter.Seq[Row] {
	return func(yield func(Row) bool) {
		for {
			b, err := r.Next()
			if err == io.EOF {
				r.setErr(r.finish())
				return
			}
			if err != nil {
				r.setErr(err)
				return
			}
			for _, row := range b {
				if !yield(row) {
					// Early break: the caller is done. Recycling here is
					// safe — rows already yielded are never recycled, and
					// the unyielded remainder was never handed out.
					r.recycle(b)
					r.Cancel()
					r.setErr(nil)
					return
				}
			}
			r.recycle(b)
		}
	}
}

// Err returns the terminal error observed by a completed Rows/All/Discard
// pass (nil until the result was consumed, and nil after a clean or
// limit-stopped completion).
func (r *Result) Err() error {
	if !r.errSeen {
		return nil
	}
	return r.err
}

// All drains the result completely and waits for the query to finish. The
// returned rows are the caller's to keep but read-only (see Next); the
// batch arrays that carried them are recycled into the engine's pool.
func (r *Result) All() ([]Row, error) {
	var out []Row
	for {
		b, err := r.Next()
		if err == io.EOF {
			return out, r.setErr(r.finish())
		}
		if err != nil {
			return out, r.setErr(err)
		}
		out = append(out, b...)
		r.recycle(b)
	}
}

// Discard drains and drops the results (the paper's experiments discard
// all result tuples), returning the row count.
func (r *Result) Discard() (int64, error) {
	var n int64
	for {
		b, err := r.Next()
		if err == io.EOF {
			return n, r.setErr(r.finish())
		}
		if err != nil {
			return n, r.setErr(err)
		}
		n += int64(len(b))
		r.recycle(b)
	}
}

// Cancel aborts the query (no-op for materialized results).
func (r *Result) Cancel() {
	if r.q != nil {
		r.q.Cancel()
	}
}

// Stats returns the query's sharing counters (valid after completion; zero
// for materialized results).
func (r *Result) Stats() *core.QueryStats {
	if r.q == nil {
		return &core.QueryStats{}
	}
	return &r.q.Stats
}

// compile-time check that Row and the engine's tuple stay one type.
var _ []Row = []tuple.Tuple(nil)
