// Explicit transactions on the facade: db.Begin returns a Tx that stages
// INSERT/UPDATE/DELETE across statements and commits them atomically — one
// WAL batch, one durable flush, all-or-nothing visibility. ExecSession is
// the session-aware script runner the network server uses: it routes
// BEGIN/COMMIT/ROLLBACK to a per-session Tx and everything else to the
// stateless paths.
//
// Transactions take table exclusive locks at first touch and hold them to
// Commit/Rollback. Reads do not go through the transaction: db.Query sees
// committed state only (and a query over a table this transaction has
// written would wait on its own lock — sessions catch that and return a
// typed *TxConflictError instead).
package qpipe

import (
	"context"

	"qpipe/internal/ops"
	"qpipe/internal/storage/sm"
	"qpipe/sql"
)

// Tx is an explicit multi-statement transaction. It is not safe for
// concurrent use by multiple goroutines (a session owns its transaction);
// separate transactions may run concurrently.
type Tx struct {
	db *DB
	tx *sm.Tx
}

// Begin starts an explicit transaction. The caller must finish it with
// Commit or Rollback — an abandoned transaction holds its table locks
// forever.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, tx: db.mgr.Begin()}
}

// Exec runs a SQL script of INSERT, UPDATE and DELETE statements inside the
// transaction, staging their effects (visible to later statements in the
// same transaction, invisible to everyone else until Commit). DDL and
// queries are a *StatementError: CREATE/ANALYZE autocommit through db.Exec,
// SELECT through db.Query. Returns the total number of rows affected so far
// by this call.
func (tx *Tx) Exec(ctx context.Context, text string) (int64, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, stmt := range stmts {
		n, err := tx.execStmt(ctx, stmt)
		if err != nil {
			return affected, err
		}
		affected += n
	}
	return affected, nil
}

func (tx *Tx) execStmt(ctx context.Context, stmt sql.Statement) (int64, error) {
	switch s := stmt.(type) {
	case *sql.Insert:
		schema, err := tx.db.Schema(s.Table)
		if err != nil {
			return 0, err
		}
		rows, err := buildInsertRows(schema, s)
		if err != nil {
			return 0, err
		}
		if err := tx.Insert(ctx, s.Table, rows...); err != nil {
			return 0, err
		}
		return int64(len(rows)), nil
	case *sql.Update:
		node, err := tx.db.compileUpdate(s)
		if err != nil {
			return 0, err
		}
		return ops.StageMutation(ctx, tx.tx, node)
	case *sql.Delete:
		node, err := tx.db.compileDelete(s)
		if err != nil {
			return 0, err
		}
		return ops.StageMutation(ctx, tx.tx, node)
	default:
		return 0, &StatementError{Stmt: statementName(stmt),
			Reason: "not allowed inside a transaction (only INSERT, UPDATE and DELETE stage)"}
	}
}

// Insert stages rows for the table (the programmatic equivalent of INSERT
// inside the transaction). Rows are validated against the schema.
func (tx *Tx) Insert(ctx context.Context, table string, rows ...Row) error {
	t, err := tx.db.mgr.Table(table)
	if err != nil {
		return &UnknownTableError{Table: table}
	}
	if err := checkRows(table, t.Schema, rows); err != nil {
		return err
	}
	for _, r := range rows {
		if err := tx.tx.StageInsert(ctx, table, r); err != nil {
			return err
		}
	}
	return nil
}

// Commit makes the transaction's writes durable and visible: the net effect
// is logged as one WAL batch, flushed (the commit point), and applied to the
// heaps and indexes before the table locks release. Cached results over the
// written tables are invalidated. Committing a finished transaction is a
// *sm.TxDoneError.
func (tx *Tx) Commit(ctx context.Context) error {
	tables := tx.tx.Tables()
	if err := tx.tx.Commit(ctx); err != nil {
		return err
	}
	for _, t := range tables {
		tx.db.invalidateTable(t)
	}
	return nil
}

// Rollback discards the staged writes and releases the transaction's locks.
// Safe to call on a finished transaction (no-op), so "defer tx.Rollback()"
// after Begin is the idiomatic cleanup.
func (tx *Tx) Rollback() { tx.tx.Rollback() }

// ---- Session-aware execution ---------------------------------------------------

// ExecSession runs a SQL script with session state: SET folds into the
// session, BEGIN/COMMIT/ROLLBACK control the session's transaction, and
// INSERT/UPDATE/DELETE stage into it when one is open (autocommitting
// through the engine otherwise). This is what the network server runs for
// each Exec frame, giving remote clients transactions. Returns the total
// rows affected by the script's mutations.
func (db *DB) ExecSession(ctx context.Context, sess *Session, text string) (int64, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *sql.Set:
			if err := sess.Apply(s); err != nil {
				return affected, err
			}
		case *sql.Begin:
			if sess.tx != nil {
				return affected, &TxStateError{Stmt: "BEGIN", Open: true}
			}
			sess.tx = db.Begin()
		case *sql.Commit:
			if sess.tx == nil {
				return affected, &TxStateError{Stmt: "COMMIT"}
			}
			t := sess.tx
			sess.tx = nil
			if err := t.Commit(ctx); err != nil {
				return affected, err
			}
		case *sql.Rollback:
			if sess.tx == nil {
				return affected, &TxStateError{Stmt: "ROLLBACK"}
			}
			sess.tx.Rollback()
			sess.tx = nil
		default:
			var n int64
			var err error
			if sess.tx != nil {
				n, err = sess.tx.execStmt(ctx, stmt)
			} else {
				n, err = db.execStmt(ctx, stmt)
			}
			if err != nil {
				return affected, err
			}
			affected += n
		}
	}
	return affected, nil
}

// GuardQuery rejects a SELECT that would self-deadlock against the
// session's open transaction (see guardQuery). Front ends that pair
// db.Query with session transactions — the network server, the shell —
// call this before submitting.
func (s *Session) GuardQuery(stmt sql.Statement) error { return s.guardQuery(stmt) }

// guardQuery rejects a SELECT that would self-deadlock: inside an open
// transaction, reading a table the transaction has written would wait
// forever on the session's own exclusive lock. Reads of untouched tables
// (committed state) pass through.
func (s *Session) guardQuery(stmt sql.Statement) error {
	if s.tx == nil {
		return nil
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil
	}
	check := func(table string) error {
		if s.tx.tx.Writes(table) {
			return &TxConflictError{Table: table}
		}
		return nil
	}
	if err := check(sel.From.Table); err != nil {
		return err
	}
	for _, j := range sel.Joins {
		if err := check(j.Ref.Table); err != nil {
			return err
		}
	}
	return nil
}

// Close rolls back the session's open transaction, if any (connection
// teardown; without it an abandoned remote transaction would hold its table
// locks forever).
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
	}
}

// InTx reports whether the session has an open transaction.
func (s *Session) InTx() bool { return s.tx != nil }
